"""Synthetic-workload driver behind ``python -m repro serve-bench``.

Drives a mixed workload (the paper's five applications x border patterns)
through the engine twice:

* **baseline** — cold-compile-per-request: every request re-traces,
  re-runs model selection and rebuilds its plan with all process-level
  caches cleared, single-threaded — the pre-``repro.serve`` behaviour of
  the CLI and examples;
* **served** — through :class:`~repro.serve.engine.ServeEngine` with the
  plan cache and worker pool enabled.

and reports throughput, latency percentiles and plan-cache hit rate through
:mod:`repro.reporting`.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..gpu.device import DeviceSpec, GTX680
from ..reporting import format_table
from .engine import Request, ServeEngine
from .plan import build_plan

DEFAULT_APPS = ("gaussian", "laplace", "bilateral", "sobel", "night")
DEFAULT_PATTERNS = ("clamp", "mirror")


def build_workload(
    n: int,
    *,
    size: int = 128,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_APPS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    variant: str = "isp+m",
    shuffle: bool = True,
) -> list[Request]:
    """A deterministic mix of (app, pattern) request kinds.

    ``shuffle=True`` interleaves the kinds pseudo-randomly (the served
    workload); ``shuffle=False`` cycles round-robin, so any prefix is a
    balanced sample — the baseline uses that to cost every kind fairly.
    """
    rng = np.random.default_rng(seed)
    # A small pool of distinct input images, reused across requests.
    pool = [rng.random((size, size), dtype=np.float32) for _ in range(4)]
    kinds = [(a, p) for a in apps for p in patterns]
    order = np.arange(n) % len(kinds)
    if shuffle:
        order = rng.permutation(order)
    requests = []
    for i in range(n):
        app, pattern = kinds[order[i]]
        requests.append(
            Request(app=app, image=pool[i % len(pool)], pattern=pattern,
                    variant=variant)
        )
    return requests


def _clear_process_caches() -> None:
    """Drop every process-level memo so a build is genuinely cold."""
    from ..model import clear_model_cache
    from ..runtime import clear_profile_cache

    clear_model_cache()
    clear_profile_cache()


def run_baseline(requests: list[Request], *, device: DeviceSpec = GTX680,
                 block: tuple[int, int] = (32, 4)) -> dict:
    """Cold-compile-per-request, one image at a time, one thread."""
    t0 = time.perf_counter()
    build_s = 0.0
    for req in requests:
        _clear_process_caches()
        h, w = req.image.shape
        plan = build_plan(req.app, req.pattern, w, h, variant=req.variant,
                          device=device, block=block, constant=req.constant)
        # The engine sanitizes every plan it builds; the cold baseline must
        # price the same work or the speedup comparison is lopsided.
        plan.sanitize()
        build_s += plan.build_seconds
        plan.execute(req.image)
    elapsed = time.perf_counter() - t0
    return {
        "requests": len(requests),
        "elapsed_s": elapsed,
        "throughput_rps": len(requests) / elapsed if elapsed else float("inf"),
        "build_seconds_total": build_s,
    }


def run_serve_bench(
    *,
    requests: int = 200,
    size: int = 128,
    workers: int = 4,
    batch_size: int = 8,
    plan_cache_size: int = 64,
    baseline_requests: Optional[int] = None,
    seed: int = 0,
    variant: str = "isp+m",
    device: DeviceSpec = GTX680,
    apps: Sequence[str] = DEFAULT_APPS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
) -> dict:
    """Run baseline + served workloads and collect one report dict."""
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    workload = build_workload(requests, size=size, seed=seed, apps=apps,
                              patterns=patterns, variant=variant)
    distinct = len({r.signature for r in workload})

    if baseline_requests is None:
        baseline_requests = min(requests, max(distinct * 2, 20))
    # Round-robin ordering: any prefix samples every workload kind evenly,
    # so a short baseline run still prices the expensive kinds.
    baseline_workload = build_workload(
        baseline_requests, size=size, seed=seed, apps=apps,
        patterns=patterns, variant=variant, shuffle=False,
    )
    baseline = run_baseline(baseline_workload, device=device)

    _clear_process_caches()  # the served run pays its own cold builds
    engine = ServeEngine(workers=workers, batch_size=batch_size,
                         plan_cache_size=plan_cache_size, device=device,
                         queue_depth=max(64, requests))
    with engine:
        t0 = time.perf_counter()
        responses = engine.run(workload)
        elapsed = time.perf_counter() - t0
        stats = engine.stats()

    errors = [r for r in responses if not r.ok]
    hits = stats["engine"]["engine.plan_cache_hits"]
    misses = stats["engine"]["engine.plan_cache_misses"]
    served_rps = requests / elapsed if elapsed else float("inf")
    return {
        "requests": requests,
        "size": size,
        "workers": workers,
        "distinct_workloads": distinct,
        "variant": variant,
        "errors": len(errors),
        "baseline": baseline,
        "served": {
            "elapsed_s": elapsed,
            "throughput_rps": served_rps,
            "cache_hits": hits,
            "cache_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "latency": stats["latency"],
            "fallbacks_compile": stats["engine"]["engine.fallbacks_compile"],
            "fallbacks_timeout": stats["engine"]["engine.fallbacks_timeout"],
            "batches": stats["engine"]["engine.batches"],
        },
        "speedup": served_rps / baseline["throughput_rps"],
    }


def format_report(report: dict) -> str:
    """Render the serve-bench report as the repo's standard ASCII table."""
    served = report["served"]
    base = report["baseline"]
    exec_lat = served["latency"].get("engine.execute_seconds", {})
    rows = [
        ["requests served", report["requests"]],
        ["distinct workloads", report["distinct_workloads"]],
        ["workers", report["workers"]],
        ["errors", report["errors"]],
        ["plan-cache hit rate", f"{served['hit_rate']:.1%}"],
        ["plan-cache hits/misses",
         f"{served['cache_hits']}/{served['cache_misses']}"],
        ["micro-batches", served["batches"]],
        ["fallbacks (compile/timeout)",
         f"{served['fallbacks_compile']}/{served['fallbacks_timeout']}"],
        ["served throughput", f"{served['throughput_rps']:.1f} req/s"],
        [f"baseline throughput (cold, n={base['requests']})",
         f"{base['throughput_rps']:.1f} req/s"],
        ["speedup over cold baseline", f"{report['speedup']:.1f}x"],
        ["exec latency p50/p90",
         f"{exec_lat.get('p50', 0.0) * 1e3:.2f}/"
         f"{exec_lat.get('p90', 0.0) * 1e3:.2f} ms"],
    ]
    return format_table(
        ["metric", "value"],
        rows,
        title=(f"serve-bench: mixed {report['variant']} workload, "
               f"{report['size']}x{report['size']} images"),
    )
