"""Runtime: functional simulation, profiling/timing, vectorized host path."""

from ..compiler.isp import Variant
from .executor import (
    FineClass,
    KernelMeasurement,
    KernelProfile,
    PipelineMeasurement,
    SimulationResult,
    clear_profile_cache,
    fine_block_classes,
    measure_pipeline,
    profile_kernel,
    run_pipeline_simt,
    select_variants,
)
from .padding import PaddingEstimate, measure_padding_kernel, pad_copy_time_us
from .vectorized import run_kernel_vectorized, run_pipeline_vectorized

__all__ = [
    "FineClass",
    "KernelMeasurement",
    "KernelProfile",
    "PipelineMeasurement",
    "SimulationResult",
    "Variant",
    "clear_profile_cache",
    "fine_block_classes",
    "measure_padding_kernel",
    "measure_pipeline",
    "pad_copy_time_us",
    "PaddingEstimate",
    "profile_kernel",
    "run_kernel_vectorized",
    "run_pipeline_simt",
    "run_pipeline_vectorized",
    "select_variants",
]
