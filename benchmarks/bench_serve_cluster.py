"""Cluster scaling — aggregate throughput vs shard count, hit rate held.

Not a paper table: this prices the ``repro.cluster`` tier built over the
serving subsystem. The claim under test is that sharding by content digest
scales throughput without diluting per-shard locality: the rendezvous
router keeps each workload's keyspace on one shard, so every shard's plan
cache sees its full (not 1/N-th) hit rate while the fleet's aggregate
request rate grows with processes.

Asserted everywhere:

* zero request errors and every response digest-verified bit-exact,
* per-shard plan-cache hit rate >= 90 % at every point on the curve
  (routing disjointness — the property that makes scaling worth having).

Asserted only where it can mean anything (``scaling_meaningful``, i.e.
``os.cpu_count() >= 4``): aggregate throughput at 4 shards >= 2.5x the
1-shard point. On fewer cores the shard processes time-slice one CPU and
the "curve" measures the scheduler; the report still records it.

Env overrides (the CI smoke job turns these down):
``REPRO_CLUSTER_BENCH_REQUESTS``, ``REPRO_CLUSTER_BENCH_SHARDS``,
``REPRO_CLUSTER_BENCH_SIZE``.
"""

from __future__ import annotations

from repro.cluster import format_cluster_report, run_cluster_bench

from harness import stable_seed


def build():
    return run_cluster_bench(seed=stable_seed("bench_serve_cluster"))


def test_serve_cluster_scaling(benchmark, report):
    rep = benchmark.pedantic(build, rounds=1, iterations=1)
    report("serve_cluster_scaling", format_cluster_report(rep), data={
        "requests": rep["requests"],
        "cpu_count": rep["cpu_count"],
        "scaling_meaningful": rep["scaling_meaningful"],
        "points": rep["points"],
    })

    for point in rep["points"]:
        assert not point["errors"], (point["shards"], point["errors"])
        # Routing disjointness: every shard that served traffic kept its
        # plan cache hot — sharding must not dilute locality.
        served = {s for s, n in point["by_slot"].items() if n}
        for slot in served:
            assert point["per_shard_hit_rates"][slot] >= 0.90, (
                point["shards"], slot, point["per_shard_hit_rates"])

    if rep["scaling_meaningful"]:
        by_shards = {p["shards"]: p for p in rep["points"]}
        if 4 in by_shards and 1 in by_shards:
            assert by_shards[4]["speedup_vs_1"] >= 2.5, by_shards[4]
