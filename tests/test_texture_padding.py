"""Tests for the texture variant and the padding baseline (paper Section I's
alternative border strategies)."""

import numpy as np
import pytest

from repro.compiler import CompileError, Variant, compile_kernel, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral, gaussian
from repro.filters.reference import bilateral_reference, gaussian_reference
from repro.gpu import GTX680, RTX2080
from repro.ir import Opcode
from repro.runtime import (
    measure_padding_kernel,
    measure_pipeline,
    pad_copy_time_us,
    run_pipeline_simt,
)
from tests.conftest import make_conv_kernel


class TestTextureCorrectness:
    @pytest.mark.parametrize("boundary,const", [
        (Boundary.CLAMP, 0.0),
        (Boundary.CONSTANT, 0.4),
    ])
    def test_matches_reference(self, boundary, const, rng):
        src = rng.random((48, 48)).astype(np.float32)
        pipe = gaussian.build_pipeline(48, 48, boundary, const)
        res = run_pipeline_simt(pipe, variant=Variant.TEXTURE, block=(16, 4),
                                inputs={"inp": src})
        ref = gaussian_reference(src, boundary, const)
        assert np.abs(res.output - ref).max() < 1e-6

    def test_bilateral_texture(self, rng):
        src = rng.random((32, 32)).astype(np.float32)
        pipe = bilateral.build_pipeline(32, 32, Boundary.CLAMP, radius=3)
        res = run_pipeline_simt(pipe, variant=Variant.TEXTURE, block=(16, 4),
                                inputs={"inp": src})
        ref = bilateral_reference(src, Boundary.CLAMP, radius=3)
        assert np.abs(res.output - ref).max() < 1e-4

    def test_matches_other_variants_bitexact(self, rng):
        src = rng.random((48, 48)).astype(np.float32)
        pipe = gaussian.build_pipeline(48, 48, Boundary.CLAMP)
        a = run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(16, 4),
                              inputs={"inp": src})
        b = run_pipeline_simt(pipe, variant=Variant.TEXTURE, block=(16, 4),
                              inputs={"inp": src})
        assert np.array_equal(a.output, b.output)


class TestTextureLimitations:
    """The paper's point: texture hardware is fast but inflexible."""

    @pytest.mark.parametrize("boundary", [Boundary.MIRROR, Boundary.REPEAT])
    def test_unsupported_patterns_rejected(self, boundary):
        desc = trace_kernel(make_conv_kernel(
            64, 64, boundary, np.ones((3, 3), np.float32)))
        with pytest.raises(CompileError, match="cannot express"):
            compile_kernel(desc, variant=Variant.TEXTURE)

    def test_no_checks_no_address_arithmetic(self):
        desc = trace_kernel(make_conv_kernel(
            64, 64, Boundary.CLAMP, np.ones((3, 3), np.float32)))
        ck = compile_kernel(desc, variant=Variant.TEXTURE)
        ops = [i.op for i in ck.func.instructions()]
        assert Opcode.TEX in ops
        assert Opcode.LD not in ops  # reads go through the TMU
        assert all(i.role != "check" for i in ck.func.instructions())
        # Far fewer instructions than naive (no checks, no address chain).
        naive = compile_kernel(desc, variant=Variant.NAIVE)
        assert ck.func.static_size() < 0.8 * naive.func.static_size()

    def test_point_operator_allowed(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(64, 64, Boundary.CLAMP)
        mag = trace_kernel(pipe.kernels[2])
        ck = compile_kernel(mag, variant=Variant.TEXTURE)
        assert ck.effective_variant is Variant.TEXTURE

    def test_measured_beats_naive_for_stencils(self):
        pipe = gaussian.build_pipeline(512, 512, Boundary.CLAMP)
        t_naive = measure_pipeline(pipe, variant=Variant.NAIVE,
                                   device=GTX680).total_us
        t_tex = measure_pipeline(pipe, variant=Variant.TEXTURE,
                                 device=GTX680).total_us
        assert t_tex < t_naive


class TestPaddingBaseline:
    def test_copy_cost_scales_with_image(self):
        small, _ = pad_copy_time_us(GTX680, 512, 512, 6, 6)
        large, _ = pad_copy_time_us(GTX680, 2048, 2048, 6, 6)
        assert large > 10 * small  # ~16x the pixels

    def test_faster_memory_cheaper_copy(self):
        kepler, _ = pad_copy_time_us(GTX680, 1024, 1024, 6, 6)
        turing, _ = pad_copy_time_us(RTX2080, 1024, 1024, 6, 6)
        assert turing < kepler

    def test_padded_bytes(self):
        _, nbytes = pad_copy_time_us(GTX680, 100, 50, 3, 2)
        assert nbytes == (100 + 6) * (50 + 4) * 4

    def test_total_includes_copy_and_kernel(self):
        pipe = gaussian.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        est = measure_padding_kernel(desc, device=GTX680)
        assert est.copy_us > 0
        assert est.kernel_us > 0
        assert est.total_us == pytest.approx(est.copy_us + est.kernel_us)

    def test_point_operator_needs_no_copy(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(256, 256, Boundary.CLAMP)
        mag = trace_kernel(pipe.kernels[2])
        est = measure_padding_kernel(mag, device=GTX680)
        assert est.copy_us == 0.0

    def test_padding_kernel_cheaper_than_naive_kernel(self):
        """The padded kernel is check-free, so its *kernel* time must beat
        the naive kernel's; the copy is what it pays for that."""
        pipe = gaussian.build_pipeline(1024, 1024, Boundary.REPEAT)
        desc = trace_kernel(pipe.kernels[0])
        est = measure_padding_kernel(desc, device=GTX680)
        t_naive = measure_pipeline(pipe, variant=Variant.NAIVE,
                                   device=GTX680).total_us
        assert est.kernel_us < t_naive
