"""Pinned gap: the SIMT path has no fused kernel — fused plans stage.

``variant="fused"`` is a *host-side* execution strategy (overlapped tiles on
the vectorized executor). The functional SIMT simulator has no fused code
shape: when a fused plan is simulated (sanitize, ``execute_simt``), each
stage compiles as the fully checked single-region NAIVE kernel and runs
per-kernel — semantically identical, but staged. This module pins that
fallback explicitly so the gap is a documented decision, not an accident:

* the passing tests freeze today's behaviour (per-stage NAIVE compiles, one
  profiler per stage, bit-identical output to the staged reference);
* the ``xfail(strict=True)`` test is the tripwire — the day a compiler-level
  fused SIMT variant lands, it *fails by passing*, forcing whoever adds it
  to rewrite these pins in the same commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import Variant
from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.gpu import GTX680, VEGA64
from repro.runtime import run_pipeline_vectorized
from repro.serve.plan import build_plan

SIZE = 48


@pytest.fixture
def image(rng):
    return rng.random((SIZE, SIZE), dtype=np.float32)


def _staged_reference(app: str, image: np.ndarray, pattern: str) -> np.ndarray:
    pipe = PIPELINES[app](SIZE, SIZE, Boundary(pattern))
    images = run_pipeline_vectorized(pipe, {pipe.inputs[0].name: image},
                                     variant="naive")
    return images[pipe.output.name]


class TestFusedPlansStageOnSimt:
    def test_fused_plan_compiles_simt_stages_as_naive(self):
        plan = build_plan("night", "mirror", SIZE, SIZE, variant="fused",
                          block=(16, 4))
        # Bordered stages carry the fused choice; point operators have no
        # border handling to fuse away and stay naive.
        bordered = {d.output_name for d in plan.descs
                    if d.needs_border_handling}
        for name, choice in plan.kernel_variants.items():
            assert choice == ("fused" if name in bordered else "naive")
        assert bordered
        compiled = plan._compiled_simt()
        # One compiled kernel per stage — not one fused megakernel.
        assert len(compiled) == len(plan.descs) > 1
        for ck in compiled:
            assert ck.effective_variant is Variant.NAIVE

    @pytest.mark.parametrize("device", [GTX680, VEGA64],
                             ids=lambda d: d.name)
    def test_fused_plan_simt_output_matches_staged(self, image, device):
        """The fallback must be invisible in the bits, on both warp widths."""
        plan = build_plan("sobel", "clamp", SIZE, SIZE, variant="fused",
                          block=(16, 4), device=device)
        out = plan.execute_simt(image)
        assert np.array_equal(out, _staged_reference("sobel", image, "clamp"))

    def test_prepad_plan_stages_the_same_way(self):
        """prepad is the other host-side strategy with no SIMT code shape."""
        plan = build_plan("gaussian", "repeat", SIZE, SIZE, variant="prepad",
                          block=(16, 4))
        for ck in plan._compiled_simt():
            assert ck.effective_variant is Variant.NAIVE


@pytest.mark.xfail(
    strict=True,
    reason="no compiler-level fused SIMT variant exists; fused plans fall "
    "back to staged per-kernel NAIVE execution on the simulator — when a "
    "fused Variant lands, update the pins in this module",
)
def test_fused_simt_variant_exists():
    Variant("fused")  # ValueError today: fused is not a compiler Variant
