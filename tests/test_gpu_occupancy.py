"""Unit and property tests for the theoretical occupancy calculator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import GTX680, RTX2080, compute_occupancy, registers_per_block


class TestKnownConfigurations:
    """Spot values cross-checked against the CUDA occupancy calculator."""

    def test_gtx680_unconstrained(self):
        # 128-thread blocks, trivial register usage: block limit (16) binds
        # at 64 warps -> but warp limit allows 16 blocks = 64 warps = 100%.
        occ = compute_occupancy(GTX680, 128, 16)
        assert occ.active_blocks_per_sm == 16
        assert occ.occupancy == 1.0

    def test_gtx680_register_steps(self):
        # The Table II structure: 46 regs -> 62.5%, 59 regs -> 50%.
        assert compute_occupancy(GTX680, 128, 46).percent == pytest.approx(62.5)
        assert compute_occupancy(GTX680, 128, 59).percent == pytest.approx(50.0)

    def test_gtx680_register_limited_flag(self):
        occ = compute_occupancy(GTX680, 128, 59)
        assert occ.limiter == "registers"

    def test_rtx2080_warp_limited(self):
        # Turing: 32 warps/SM. 128-thread blocks = 4 warps -> 8 blocks max.
        occ = compute_occupancy(RTX2080, 128, 32)
        assert occ.active_blocks_per_sm == 8
        assert occ.occupancy == 1.0

    def test_rtx2080_tolerates_more_registers(self):
        # The paper: "the increased number of available registers on the
        # Turing architecture" meant no occupancy drop for the ISP variant.
        assert compute_occupancy(RTX2080, 128, 46).occupancy == 1.0
        assert compute_occupancy(RTX2080, 128, 59).occupancy == 1.0
        assert compute_occupancy(RTX2080, 128, 64).occupancy == 1.0

    def test_registers_per_block_granularity(self):
        # 4 warps, 33 regs/thread: 33*32=1056 -> rounded to 1280 per warp.
        assert registers_per_block(GTX680, 128, 33) == 4 * 1280

    def test_block_too_large(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX680, 2048, 32)

    def test_non_positive_block(self):
        with pytest.raises(ValueError):
            compute_occupancy(GTX680, 0, 32)


class TestProperties:
    @given(
        regs=st.integers(min_value=1, max_value=255),
        threads=st.sampled_from([32, 64, 128, 256, 512, 1024]),
    )
    def test_occupancy_in_unit_interval(self, regs, threads):
        for dev in (GTX680, RTX2080):
            occ = compute_occupancy(dev, threads, regs)
            assert 0.0 < occ.occupancy <= 1.0
            assert occ.active_warps_per_sm <= dev.max_warps_per_sm

    @given(
        threads=st.sampled_from([32, 64, 128, 256]),
        r1=st.integers(min_value=1, max_value=254),
        delta=st.integers(min_value=1, max_value=64),
    )
    def test_monotone_nonincreasing_in_registers(self, threads, r1, delta):
        """More registers can never raise occupancy."""
        for dev in (GTX680, RTX2080):
            o1 = compute_occupancy(dev, threads, r1).occupancy
            o2 = compute_occupancy(dev, threads, min(255, r1 + delta)).occupancy
            assert o2 <= o1

    @given(
        threads=st.sampled_from([32, 64, 128, 256, 512]),
        regs=st.integers(min_value=1, max_value=255),
    )
    def test_register_file_respected(self, threads, regs):
        for dev in (GTX680, RTX2080):
            occ = compute_occupancy(dev, threads, regs)
            capped = min(regs, dev.max_registers_per_thread)
            used = occ.active_blocks_per_sm * registers_per_block(
                dev, threads, capped
            )
            if occ.active_blocks_per_sm > 1:
                assert used <= dev.registers_per_sm
