"""bench_serve_cluster: the 1 -> N shard scaling curve.

For each shard count the bench boots a fresh :class:`~repro.cluster.manager.
LocalCluster` + gateway, drives the same deterministic workload through it
(digest-verified), and records aggregate throughput, per-shard cache hit
rates, and the error budget. The headline claim — aggregate throughput
scales with shards while per-shard hit rate stays high because routing is
content-hashed — only *shows* on hardware with cores to scale across:
``scaling_meaningful`` in the report says whether this host qualifies
(``os.cpu_count() >= max_shards``), and CI asserts the >= 2.5x @ 4 shards
bar only when it does. The properties that hold anywhere — >= 90 % hit
rate per shard, zero untyped errors, disjoint keyspaces — are asserted
unconditionally by the test suite.

Environment overrides (CI smoke turns the dials down):

* ``REPRO_CLUSTER_BENCH_REQUESTS`` — requests per point (default 400)
* ``REPRO_CLUSTER_BENCH_SHARDS``   — comma list of shard counts (``1,2,4``)
* ``REPRO_CLUSTER_BENCH_SIZE``     — image side (default 96)
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Sequence

from .gateway import Gateway, SyncGateway
from .loadgen import build_cluster_workload, run_load
from .manager import LocalCluster


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def run_cluster_bench(
    *,
    requests: Optional[int] = None,
    shard_counts: Optional[Sequence[int]] = None,
    size: Optional[int] = None,
    seed: int = 0,
    concurrency: int = 16,
    engine_workers: int = 2,
    verify: bool = True,
) -> dict:
    """Run the scaling curve; returns the report dict."""
    if requests is None:
        requests = _env_int("REPRO_CLUSTER_BENCH_REQUESTS", 400)
    if size is None:
        size = _env_int("REPRO_CLUSTER_BENCH_SIZE", 96)
    if shard_counts is None:
        raw = os.environ.get("REPRO_CLUSTER_BENCH_SHARDS", "1,2,4")
        shard_counts = [int(s) for s in raw.split(",") if s.strip()]
    shard_counts = sorted(set(shard_counts))

    points = []
    for shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
            with LocalCluster(
                shards=shards, warmstart_dir=tmp,
                engine_workers=engine_workers,
                snapshot_interval_s=0,  # no snapshot churn during timing
            ) as cluster:
                gw = SyncGateway(Gateway(
                    cluster.router,
                    max_inflight=max(64, concurrency * 2),
                    metrics_source=cluster.metrics_snapshots,
                ))
                try:
                    workload, pool = build_cluster_workload(
                        requests, size=size, seed=seed
                    )
                    report = run_load(gw, workload, pool,
                                      concurrency=concurrency, verify=verify)
                    hit_rates = _per_shard_hit_rates(cluster)
                finally:
                    gw.close()
        points.append({
            "shards": shards,
            "throughput_rps": report["throughput_rps"],
            "ok": report["ok"],
            "errors": report["errors"],
            "failovers": report["failovers"],
            "cache_hit_rate": report["cache_hit_rate"],
            "per_shard_hit_rates": hit_rates,
            "by_slot": report["by_slot"],
        })

    base = points[0]["throughput_rps"] or 1e-12
    for p in points:
        p["speedup_vs_1"] = p["throughput_rps"] / base
    return {
        "requests": requests,
        "size": size,
        "seed": seed,
        "concurrency": concurrency,
        "cpu_count": os.cpu_count() or 1,
        # The scaling headline needs real parallel hardware; on fewer cores
        # than shards the curve measures the scheduler, not the cluster.
        "scaling_meaningful": (os.cpu_count() or 1) >= max(shard_counts),
        "points": points,
    }


def _per_shard_hit_rates(cluster: LocalCluster) -> dict[str, float]:
    """Plan-cache hit rate per shard, read from the shards' own counters."""
    out: dict[str, float] = {}
    for slot, reply in cluster.stats_all(samples=False).items():
        counters = reply.get("stats", {}).get("engine", {})
        hits = counters.get("engine.plan_cache_hits", 0)
        misses = counters.get("engine.plan_cache_misses", 0)
        total = hits + misses
        out[slot] = (hits / total) if total else 0.0
    return out


def format_cluster_report(report: dict) -> str:
    lines = [
        "serve-cluster scaling",
        "---------------------",
        f"requests/point  {report['requests']}  "
        f"(size {report['size']}, seed {report['seed']})",
        f"host cores      {report['cpu_count']}  "
        f"(scaling curve meaningful: {report['scaling_meaningful']})",
        "",
        f"{'shards':>6} {'req/s':>10} {'speedup':>8} {'hit rate':>9} "
        f"{'errors':>7} {'failovers':>10}",
    ]
    for p in report["points"]:
        min_hit = min(p["per_shard_hit_rates"].values() or [0.0])
        lines.append(
            f"{p['shards']:>6} {p['throughput_rps']:>10.1f} "
            f"{p['speedup_vs_1']:>7.2f}x {min_hit:>8.1%} "
            f"{sum(p['errors'].values()):>7} {p['failovers']:>10}"
        )
    return "\n".join(lines)
