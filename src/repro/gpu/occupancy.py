"""Theoretical occupancy calculator.

Implements the same arithmetic as Nvidia's CUDA Occupancy Calculator for the
resources our kernels use (threads, blocks, registers — the evaluated kernels
use no shared memory, matching the paper's setup). Table II of the paper is
regenerated from this module: register usage per variant -> theoretical
occupancy on the GTX680.

Occupancy feeds the paper's cost model (Section IV-B): a drop from
``O_naive`` to ``O_ISP`` multiplies the predicted runtime by
``O_naive / O_ISP`` (Eq. 10).
"""

from __future__ import annotations

import dataclasses
import math

from .device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy computation for one kernel configuration."""

    active_blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    #: which resource capped the result: "blocks" | "warps" | "registers"
    limiter: str
    warps_per_block: int

    @property
    def percent(self) -> float:
        return 100.0 * self.occupancy


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def registers_per_block(
    device: DeviceSpec, block_threads: int, regs_per_thread: int
) -> int:
    """Register-file footprint of one resident block (allocation-granular).

    CC 3.0+ allocates registers per *warp*, rounded up to
    ``register_alloc_unit``; the number of warps charged is rounded up to
    ``warp_alloc_granularity``.
    """
    warps = math.ceil(block_threads / device.warp_size)
    charged_warps = _round_up(warps, device.warp_alloc_granularity)
    per_warp = _round_up(
        max(regs_per_thread, 1) * device.warp_size, device.register_alloc_unit
    )
    return charged_warps * per_warp


def compute_occupancy(
    device: DeviceSpec, block_threads: int, regs_per_thread: int,
    shared_bytes: int = 0,
) -> OccupancyResult:
    """Theoretical occupancy for a kernel on ``device``.

    ``regs_per_thread`` should already be capped at
    ``device.max_registers_per_thread`` (the compiler's register estimator
    applies the cap and accounts for spill traffic separately).
    ``shared_bytes`` is the per-block shared-memory footprint of the
    tile-staging variants; it adds a fourth resource limit.
    """
    if block_threads <= 0:
        raise ValueError("block_threads must be positive")
    if block_threads > device.max_threads_per_block:
        raise ValueError(
            f"block of {block_threads} threads exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    regs_per_thread = min(regs_per_thread, device.max_registers_per_thread)

    warps_per_block = math.ceil(block_threads / device.warp_size)

    limit_blocks = device.max_blocks_per_sm
    limit_warps = device.max_warps_per_sm // warps_per_block
    if regs_per_thread > 0:
        block_regs = registers_per_block(device, block_threads, regs_per_thread)
        limit_regs = device.registers_per_sm // block_regs
    else:
        limit_regs = limit_blocks

    if shared_bytes > 0:
        granule = device.shared_alloc_unit
        charged = _round_up(shared_bytes, granule)
        limit_shared = device.shared_mem_per_sm // charged
    else:
        limit_shared = limit_blocks

    active = min(limit_blocks, limit_warps, limit_regs, limit_shared)
    if active <= 0:
        # A single block exceeds the register file: the kernel is unlaunchable
        # at this block size on real hardware; we model it as one serialized
        # block (the compiler should have spilled before this point).
        active = 1

    if active == limit_shared and limit_shared < min(limit_blocks, limit_warps,
                                                     limit_regs):
        limiter = "shared"
    elif active == limit_regs and limit_regs < min(limit_blocks, limit_warps):
        limiter = "registers"
    elif active == limit_warps and limit_warps < limit_blocks:
        limiter = "warps"
    else:
        limiter = "blocks"

    active_warps = active * warps_per_block
    return OccupancyResult(
        active_blocks_per_sm=active,
        active_warps_per_sm=active_warps,
        occupancy=active_warps / device.max_warps_per_sm,
        limiter=limiter,
        warps_per_block=warps_per_block,
    )
