"""Fused pipeline execution vs staged, priced and model-checked.

The fusion pass trades redundant halo recompute for never materializing a
full-image intermediate (docs/pipelines.md). This smoke pins the headline
on the host executor:

* **fused beats staged on Night at 2048²** — four chained à-trous stages
  plus tonemap is the corpus's deepest pipeline (15-pixel cumulative input
  halo, four full-image intermediates staged execution round-trips), and
  the regime the overlapped-tiling literature targets. With the plan
  cached, the per-request fused time must beat staged ISP.
* **``predict_fused`` agrees on the winner** — the model's gain for the
  same configuration must sit on the same side of 1.0 as the measurement:
  the autotuner prior points at the arm the measurements would commit.
* **sobel secondary** — the shallow-diamond shape (two 3×3 producers, one
  point consumer) at 512² sits near the crossover on the host executor:
  measured and reported for the trajectory, gated only on the model side.

Headline numbers land in ``BENCH_pipeline_fusion.json`` at the repo root
(machine-readable trajectory; see ``conftest.bench_summary``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu import GTX680
from repro.model import predict_fused
from repro.serve.plan import build_plan, trace_app

#: The headline cell: the deepest pipeline at the paper's largest size.
APP = "night"
PATTERN = "clamp"
SIZE = 2048
#: Secondary cell: the shallow sobel diamond.
SOBEL_SIZE = 512


def _per_call_s(fn, *, rounds: int = 2, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    # Best-of-N single calls: co-tenant noise only inflates a sample, so
    # the minimum is the least-contaminated estimate (autotuner convention).
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(app: str, pattern: str, size: int, rng) -> dict:
    img = rng.standard_normal((size, size)).astype(np.float32)
    staged_plan = build_plan(app, pattern, size, size, variant="isp")
    fused_plan = build_plan(app, pattern, size, size, variant="fused")
    staged_s = _per_call_s(lambda: staged_plan.execute(img))
    fused_s = _per_call_s(lambda: fused_plan.execute(img))
    # bit-exactness is the test suite's job, but a bench that silently
    # compared different outputs would be meaningless — assert it cheaply
    assert np.array_equal(staged_plan.execute(img), fused_plan.execute(img))
    pred = predict_fused(list(trace_app(app, pattern, size, size)),
                         block=(32, 4), device=GTX680, name=app)
    return {
        "app": app, "pattern": pattern, "size": size,
        "staged_ms": staged_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "measured_gain": staged_s / fused_s,
        "model_gain": pred.gain,
        "model_use_fused": pred.use_fused,
    }


def test_fused_beats_staged_on_night(benchmark, report, bench_summary,
                                     case_rng):
    def build():
        return [
            _measure(APP, PATTERN, SIZE, case_rng),
            _measure("sobel", PATTERN, SOBEL_SIZE, case_rng),
        ]

    night, sobel = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = ["pipeline fusion: fused vs staged (plan cached, best-of-2)"]
    for row in (night, sobel):
        lines.append(
            f"  {row['app']:6s}/{row['pattern']}/{row['size']}²: "
            f"staged {row['staged_ms']:8.1f} ms, "
            f"fused {row['fused_ms']:8.1f} ms "
            f"-> {row['measured_gain']:.2f}x measured, "
            f"{row['model_gain']:.2f}x model"
        )
    text = "\n".join(lines)
    report("pipeline_fusion", text, data={"cells": [night, sobel]})
    bench_summary("pipeline_fusion", {"cells": [night, sobel]})

    # The tier's whole claim: fusion wins the deep-pipeline headline cell
    # (measured ~2.7x on an idle host; gate leaves margin for loaded CI).
    assert night["measured_gain"] > 1.0, night
    # ... and the model prior points the autotuner at the same winner.
    assert night["model_use_fused"], night
    # The shallow sobel diamond sits near the crossover on the host
    # executor (~1.02x idle): its measurement is reported, not gated, but
    # the model must still price it fuse-side.
    assert sobel["model_use_fused"], sobel
