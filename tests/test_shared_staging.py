"""Tests for shared-memory tile staging (SHARED / SHARED_ISP variants)
and the barrier-phased SIMT execution that supports it."""

import numpy as np
import pytest

from repro.compiler import (
    CompileError,
    Variant,
    compile_kernel,
    shared_tile_bytes,
    trace_kernel,
)
from repro.dsl import Boundary, Pipeline
from repro.filters import bilateral, gaussian, laplace
from repro.filters.reference import correlate, gaussian_reference
from repro.gpu import GTX680, GlobalMemory, LaunchConfig, Profiler, launch
from repro.gpu.simt import SimtError
from repro.ir import DataType, IRBuilder, Opcode, Param, SpecialReg
from repro.runtime import profile_kernel, run_pipeline_simt
from tests.conftest import make_conv_kernel

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


class TestBarrierExecution:
    def _barrier_kernel(self):
        """Thread i writes tid to shared[i]; after the barrier, thread i
        reads shared[31-i] — correct only if the barrier synchronizes."""
        b = IRBuilder("swap", [
            Param("out_ptr", DataType.U32, is_pointer=True),
            Param("smem_base", DataType.U32, is_pointer=True),
        ])
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        smem = b.ld_param("smem_base")
        tid = b.special(SpecialReg.TID_X)
        off = b.cvt(b.shl(tid, 2), DataType.U32)
        b.sts(b.add(smem, off, DataType.U32), tid)
        b.bar()
        rev = b.sub(b.imm(31, DataType.S32), tid)
        roff = b.cvt(b.shl(rev, 2), DataType.U32)
        v = b.lds(b.add(smem, roff, DataType.U32), DataType.S32)
        b.st(b.add(out, off, DataType.U32), v)
        b.exit()
        func = b.finish()
        func.metadata["shared_bytes"] = 32 * 4
        return func

    def test_barrier_synchronizes_shared_memory(self):
        func = self._barrier_kernel()
        mem = GlobalMemory(1 << 12)
        out = mem.alloc(32 * 4)
        launch(func, LaunchConfig((1, 1), (32, 1)), mem, {"out_ptr": out})
        got = mem.read_array(out, (32,), DataType.S32)
        assert list(got) == list(range(31, -1, -1))

    def test_cross_warp_synchronization(self):
        """64 threads (2 warps): warp 0 writes, warp 1 reads after the bar —
        this fails without true phased execution."""
        b = IRBuilder("xwarp", [
            Param("out_ptr", DataType.U32, is_pointer=True),
            Param("smem_base", DataType.U32, is_pointer=True),
        ])
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        smem = b.ld_param("smem_base")
        tid = b.special(SpecialReg.TID_X)
        off = b.cvt(b.shl(tid, 2), DataType.U32)
        # every thread writes tid*2 at its slot
        b.sts(b.add(smem, off, DataType.U32), b.mul(tid, 2))
        b.bar()
        # every thread reads the *other* warp's slot: (tid + 32) % 64
        other = b.rem(b.add(tid, 32), b.imm(64, DataType.S32))
        ooff = b.cvt(b.shl(other, 2), DataType.U32)
        v = b.lds(b.add(smem, ooff, DataType.U32), DataType.S32)
        b.st(b.add(out, off, DataType.U32), v)
        b.exit()
        func = b.finish()
        func.metadata["shared_bytes"] = 64 * 4
        mem = GlobalMemory(1 << 12)
        out_addr = mem.alloc(64 * 4)
        launch(func, LaunchConfig((1, 1), (64, 1)), mem, {"out_ptr": out_addr})
        got = mem.read_array(out_addr, (64,), DataType.S32)
        expected = [((t + 32) % 64) * 2 for t in range(64)]
        assert list(got) == expected

    def test_barrier_without_shared_traps(self):
        b = IRBuilder("badbar", [])
        b.new_block("entry")
        b.bar()
        b.exit()
        func = b.finish()  # no shared_bytes metadata
        mem = GlobalMemory(1 << 12)
        with pytest.raises(SimtError, match="bar.sync"):
            launch(func, LaunchConfig((1, 1), (32, 1)), mem, {})

    def test_shared_access_without_allocation_traps(self):
        b = IRBuilder("nosmem", [Param("out_ptr", DataType.U32, is_pointer=True)])
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        v = b.lds(out, DataType.F32)
        del v
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 12)
        with pytest.raises(SimtError, match="shared-memory access"):
            launch(func, LaunchConfig((1, 1), (32, 1)), mem,
                   {"out_ptr": mem.alloc(128)})


class TestSharedVariantsCorrectness:
    @pytest.mark.parametrize("boundary", PATTERNS)
    @pytest.mark.parametrize("variant", [Variant.SHARED, Variant.SHARED_ISP])
    def test_gaussian_matches_reference(self, boundary, variant, rng):
        src = rng.random((48, 48)).astype(np.float32)
        pipe = gaussian.build_pipeline(48, 48, boundary, 0.3)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src})
        ref = gaussian_reference(src, boundary, 0.3)
        assert np.abs(res.output - ref).max() < 1e-6

    def test_laplace_5x5(self, rng):
        src = rng.random((48, 48)).astype(np.float32)
        pipe = laplace.build_pipeline(48, 48, Boundary.MIRROR)
        res = run_pipeline_simt(pipe, variant=Variant.SHARED_ISP, block=(16, 4),
                                inputs={"inp": src})
        from repro.filters.reference import laplace_reference

        ref = laplace_reference(src, Boundary.MIRROR)
        assert np.abs(res.output - ref).max() < 1e-4

    def test_bilateral_shared(self, rng):
        src = rng.random((32, 32)).astype(np.float32)
        pipe = bilateral.build_pipeline(32, 32, Boundary.CLAMP, radius=3)
        res = run_pipeline_simt(pipe, variant=Variant.SHARED, block=(16, 4),
                                inputs={"inp": src})
        from repro.filters.reference import bilateral_reference

        ref = bilateral_reference(src, Boundary.CLAMP, radius=3)
        assert np.abs(res.output - ref).max() < 1e-4

    def test_matches_global_variants_bitexact(self, rng):
        src = rng.random((48, 48)).astype(np.float32)
        pipe = gaussian.build_pipeline(48, 48, Boundary.REPEAT)
        a = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                              inputs={"inp": src})
        s = run_pipeline_simt(pipe, variant=Variant.SHARED_ISP, block=(16, 4),
                              inputs={"inp": src})
        assert np.array_equal(a.output, s.output)


class TestSharedVariantStructure:
    def _desc(self, boundary=Boundary.CLAMP, size=64):
        return trace_kernel(make_conv_kernel(
            size, size, boundary, np.ones((5, 5), np.float32)))

    def test_metadata_and_tile_size(self):
        desc = self._desc()
        ck = compile_kernel(desc, variant=Variant.SHARED, block=(16, 4))
        expected = (16 + 4) * (4 + 4) * 4
        assert ck.func.metadata["shared_bytes"] == expected
        assert shared_tile_bytes(desc, (16, 4)) == expected

    def test_contains_staging_ops_and_barrier(self):
        ck = compile_kernel(self._desc(), variant=Variant.SHARED, block=(16, 4))
        ops = [i.op for i in ck.func.instructions()]
        assert Opcode.STS in ops and Opcode.LDS in ops and Opcode.BAR in ops

    def test_checks_once_per_staged_pixel_not_per_tap(self):
        """The staging economy: check count is O(tile), not O(taps x pixels)."""
        desc = self._desc(Boundary.CLAMP)
        naive = compile_kernel(desc, variant=Variant.NAIVE, block=(16, 4))
        shared = compile_kernel(desc, variant=Variant.SHARED, block=(16, 4))
        n_checks = sum(1 for i in naive.func.instructions() if i.role == "check")
        s_checks = sum(1 for i in shared.func.instructions() if i.role == "check")
        assert s_checks < n_checks / 3

    def test_shared_isp_body_staging_checkfree(self):
        ck = compile_kernel(self._desc(), variant=Variant.SHARED_ISP,
                            block=(16, 4))
        for instr in ck.func.instructions():
            if instr.region == "Body":
                assert instr.role != "check"

    def test_ragged_grid_rejected(self):
        desc = self._desc(size=60)  # 60 % 16 != 0
        with pytest.raises(CompileError, match="tile the image exactly"):
            compile_kernel(desc, variant=Variant.SHARED, block=(16, 4))

    def test_point_operator_rejected(self):
        from repro.filters import sobel

        pipe = sobel.build_pipeline(64, 64, Boundary.CLAMP)
        mag = trace_kernel(pipe.kernels[2])
        with pytest.raises(CompileError, match="point operators"):
            compile_kernel(mag, variant=Variant.SHARED)

    def test_occupancy_accounts_for_shared(self):
        """A big tile must reduce resident blocks via the shared-mem limit."""
        from repro.gpu import compute_occupancy

        no_smem = compute_occupancy(GTX680, 128, 32)
        big_tile = compute_occupancy(GTX680, 128, 32, shared_bytes=12 * 1024)
        assert big_tile.active_blocks_per_sm <= min(
            4, no_smem.active_blocks_per_sm
        )
        assert big_tile.limiter == "shared"

    def test_profiling_works_for_shared_variants(self):
        desc = self._desc()
        prof = profile_kernel(desc, variant=Variant.SHARED_ISP, block=(16, 4),
                              device=GTX680, use_cache=False)
        t = prof.timing(GTX680)
        assert t.time_us > 0

    def test_differential_random_patterns(self, rng):
        """Shared staging must agree with the reference on sparse masks."""
        coeffs = np.zeros((5, 5), np.float32)
        coeffs[0, 0] = 1.0
        coeffs[2, 2] = -0.5
        coeffs[4, 1] = 0.25
        src = rng.random((32, 32)).astype(np.float32)
        k = make_conv_kernel(32, 32, Boundary.REPEAT, coeffs)
        res = run_pipeline_simt(Pipeline("p", [k]), variant=Variant.SHARED,
                                block=(16, 4), inputs={"inp": src})
        ref = correlate(src, coeffs, Boundary.REPEAT)
        assert np.abs(res.output - ref).max() < 1e-6
