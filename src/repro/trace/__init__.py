"""``repro.trace`` — end-to-end request tracing and profiling export.

Three layers (see docs/tracing.md):

* :mod:`~repro.trace.core` — :class:`Span`/:class:`Tracer` with
  deterministic head sampling, ambient installation (zero overhead
  disarmed, mirroring :mod:`repro.faults`), and explicit cross-thread
  context propagation;
* :mod:`~repro.trace.exporters` — Chrome trace-event JSON (Perfetto) and
  Prometheus text exposition over the serve stack's
  :class:`~repro.serve.metrics.MetricsRegistry`, with validating parsers
  for CI;
* :mod:`~repro.trace.profile` — measured per-ISP-region dynamic profiles
  and the measured-vs-predicted ``R_reduced`` report that closes the loop
  on paper Eqs. 1-10 in production.
"""

from .core import (
    Span,
    Tracer,
    active,
    context,
    current_context,
    install,
    recording,
    uninstall,
)
from .exporters import (
    chrome_trace,
    metric_name,
    parse_prometheus_text,
    prometheus_merged_text,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from .profile import (
    RegionComparison,
    RegionProfile,
    format_comparison_report,
    format_region_profile,
    measured_vs_predicted,
    profile_regions,
)

__all__ = [
    "RegionComparison",
    "RegionProfile",
    "Span",
    "Tracer",
    "active",
    "chrome_trace",
    "context",
    "current_context",
    "format_comparison_report",
    "format_region_profile",
    "install",
    "measured_vs_predicted",
    "metric_name",
    "parse_prometheus_text",
    "prometheus_merged_text",
    "profile_regions",
    "prometheus_text",
    "recording",
    "uninstall",
    "validate_chrome_trace",
    "write_chrome_trace",
]
