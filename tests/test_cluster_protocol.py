"""Units for the cluster wire protocol, routing, and warm-start store.

Everything here is in-process and socket-free (frames are exercised via
``pack_frame`` + a socketpair) — the cross-process paths live in
``test_cluster_gateway.py`` / ``test_cluster_chaos.py``.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.cluster import (
    CLUSTER_ERROR_KINDS,
    ProtocolError,
    RoutingTable,
    Router,
    NoLiveShards,
    WarmStartStore,
    array_digest,
    decode_array,
    encode_array,
    pack_frame,
    recv_frame,
    rendezvous_order,
    route_key,
    send_frame,
    spans_from_wire,
    spans_to_wire,
)
from repro.cluster.protocol import MAX_FRAME, _parse_prefix
from repro.serve.engine import ERROR_KINDS
from repro.trace.core import Span, Tracer


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------

class TestFrames:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5)
        b.settimeout(5)
        return a, b

    def test_roundtrip_header_and_payload(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "run", "n": 3}, b"\x00\x01\x02")
            header, payload = recv_frame(b)
            assert header == {"op": "run", "n": 3}
            assert payload == b"\x00\x01\x02"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping"})
            header, payload = recv_frame(b)
            assert header["op"] == "ping"
            assert payload == b""
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = self._pair()
        try:
            for i in range(5):
                send_frame(a, {"i": i}, bytes([i]))
            for i in range(5):
                header, payload = recv_frame(b)
                assert header["i"] == i
                assert payload == bytes([i])
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_connection_error(self):
        a, b = self._pair()
        frame = pack_frame({"op": "run"}, b"x" * 100)
        a.sendall(frame[: len(frame) // 2])
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversize_prefix_rejected(self):
        import struct

        with pytest.raises(ProtocolError, match="corrupt"):
            _parse_prefix(struct.pack(">II", MAX_FRAME + 1, 0))

    def test_oversize_payload_rejected_on_send(self):
        with pytest.raises(ProtocolError, match="too large"):
            pack_frame({}, b"\x00" * (MAX_FRAME + 1))

    def test_non_object_header_rejected(self):
        a, b = self._pair()
        try:
            import struct

            raw = b"[1,2]"
            a.sendall(struct.pack(">II", len(raw), 0) + raw)
            with pytest.raises(ProtocolError, match="must be an object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Array codec
# ---------------------------------------------------------------------------

class TestArrayCodec:
    def test_roundtrip_is_bit_exact(self):
        arr = np.random.default_rng(0).random((33, 71)).astype(np.float32)
        meta, payload = encode_array(arr)
        back = decode_array(meta, payload)
        assert back.dtype == np.float32
        assert np.array_equal(back, arr)
        assert array_digest(back) == array_digest(arr)

    def test_non_contiguous_input(self):
        arr = np.arange(64, dtype=np.float32).reshape(8, 8)[:, ::2]
        meta, payload = encode_array(arr)
        assert np.array_equal(decode_array(meta, payload), arr)

    def test_length_mismatch_rejected(self):
        meta, payload = encode_array(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ProtocolError, match="implies"):
            decode_array(meta, payload[:-1])

    def test_bad_metadata_rejected(self):
        with pytest.raises(ProtocolError):
            decode_array({"dtype": "no-such-dtype", "shape": [2]}, b"\x00" * 8)

    def test_digest_tracks_content(self):
        a = np.zeros((8, 8), dtype=np.float32)
        b = a.copy()
        b[3, 3] = np.float32(1e-30)  # one ULP-scale change flips the digest
        assert array_digest(a) != array_digest(b)


# ---------------------------------------------------------------------------
# Rendezvous hashing
# ---------------------------------------------------------------------------

class TestRendezvous:
    SLOTS = [f"shard-{i}" for i in range(5)]

    def test_deterministic(self):
        for key in ("a", "b", "digest-123"):
            assert rendezvous_order(key, self.SLOTS) == \
                rendezvous_order(key, self.SLOTS)

    def test_is_a_permutation(self):
        order = rendezvous_order("k", self.SLOTS)
        assert sorted(order) == sorted(self.SLOTS)

    def test_removal_preserves_survivor_order(self):
        # The consistent-hashing property: dropping one slot never reorders
        # the remaining preference list for any key.
        for key in (f"key-{i}" for i in range(50)):
            full = rendezvous_order(key, self.SLOTS)
            for removed in self.SLOTS:
                reduced = rendezvous_order(
                    key, [s for s in self.SLOTS if s != removed])
                assert reduced == [s for s in full if s != removed]

    def test_distribution_is_roughly_uniform(self):
        counts = {s: 0 for s in self.SLOTS}
        n = 2000
        for i in range(n):
            counts[rendezvous_order(f"key-{i}", self.SLOTS)[0]] += 1
        for slot, c in counts.items():
            assert 0.5 * n / 5 < c < 1.5 * n / 5, counts

    def test_route_key_stability(self):
        assert route_key("gaussian", "clamp", 128, 128) == \
            "gaussian|clamp|128x128|0"
        assert route_key("a", "b", 1, 2, 0.5) != route_key("a", "b", 1, 2)


# ---------------------------------------------------------------------------
# Routing table + router
# ---------------------------------------------------------------------------

class TestRouting:
    def _table(self, n=3):
        t = RoutingTable()
        for i in range(n):
            t.set_addr(f"shard-{i}", ("127.0.0.1", 9000 + i))
        return t

    def test_live_slots_tracks_marks(self):
        t = self._table()
        assert t.live_slots() == ["shard-0", "shard-1", "shard-2"]
        t.mark_dead("shard-1")
        assert t.live_slots() == ["shard-0", "shard-2"]
        assert not t.is_live("shard-1")
        t.mark_live("shard-1")
        assert t.is_live("shard-1")

    def test_generation_increments_on_mutation(self):
        t = self._table()
        g = t.generation
        t.mark_dead("shard-0")
        assert t.generation == g + 1
        t.mark_dead("shard-0")  # no-op: already dead
        assert t.generation == g + 1

    def test_respawn_revives_slot(self):
        t = self._table()
        t.mark_dead("shard-2")
        t.set_addr("shard-2", ("127.0.0.1", 9999))
        assert t.is_live("shard-2")
        assert t.addr("shard-2") == ("127.0.0.1", 9999)

    def test_router_routes_by_content_digest(self):
        r = Router(self._table())
        first = r.route("gaussian", "clamp", 64, 64)
        # Deterministic and stable across calls (memoized digest).
        assert r.route("gaussian", "clamp", 64, 64) == first
        assert len(first) == 3

    def test_router_failover_order_skips_dead(self):
        r = Router(self._table())
        order = r.route("gaussian", "clamp", 64, 64)
        r.table.mark_dead(order[0])
        after = r.route("gaussian", "clamp", 64, 64)
        assert after == order[1:]  # survivors keep their relative order

    def test_router_no_live_shards(self):
        r = Router(self._table(1))
        r.table.mark_dead("shard-0")
        with pytest.raises(NoLiveShards):
            r.route("gaussian", "clamp", 64, 64)

    def test_distinct_workloads_spread(self):
        # 10 kinds over 3 shards: placement must use more than one shard.
        r = Router(self._table())
        apps = ("gaussian", "laplace", "bilateral", "sobel", "night")
        slots = {
            r.route(a, p, 64, 64)[0]
            for a in apps for p in ("clamp", "mirror")
        }
        assert len(slots) >= 2


# ---------------------------------------------------------------------------
# Error kinds
# ---------------------------------------------------------------------------

def test_cluster_error_kinds_extend_engine_kinds():
    assert set(ERROR_KINDS) < set(CLUSTER_ERROR_KINDS)
    for kind in ("admission", "quota", "shard_unavailable", "bad_request"):
        assert kind in CLUSTER_ERROR_KINDS


# ---------------------------------------------------------------------------
# Span wire form
# ---------------------------------------------------------------------------

class TestSpanWire:
    def test_roundtrip_rebases_times(self):
        src = Tracer(sample_rate=1.0)
        root = src.start_trace("request", key="r1", app="gaussian")
        child = src.start_span("execute", root)
        src.finish(child)
        src.finish(root)

        wire = spans_to_wire(src.spans(), src.epoch_unix)
        dst = Tracer(sample_rate=1.0)
        back = spans_from_wire(wire, dst)
        assert [s.name for s in back] == ["execute", "request"]
        for w, s in zip(wire, back):
            # unix-anchored wire time == dst epoch + rebased relative time
            assert abs((dst.epoch_unix + s.start_s) - w["start_unix"]) < 1e-6
        # parent links and attributes survive
        assert back[0].parent_id == back[1].span_id
        assert back[1].attributes["app"] == "gaussian"

    def test_adoption_yields_single_tree(self):
        src = Tracer(sample_rate=1.0)
        r = src.start_trace("request", key="r1")
        c = src.start_span("plan", r)
        src.finish(c)
        src.finish(r)
        wire = spans_to_wire(src.spans(), src.epoch_unix)

        dst = Tracer(sample_rate=1.0)
        root = dst.start_trace("gateway.request", key="g1")
        adopted = dst.adopt_spans(spans_from_wire(wire, dst), parent=root,
                                  prefix="shard-0.")
        dst.finish(root)

        spans = dst.spans()
        ids = {s.span_id for s in spans}
        orphans = [s for s in spans
                   if s.parent_id is not None and s.parent_id not in ids]
        roots = [s for s in spans if s.parent_id is None]
        assert not orphans
        assert len(roots) == 1 and roots[0].name == "gateway.request"
        assert all(s.span_id.startswith("shard-0.") for s in adopted)
        assert all(s.trace_id == roots[0].trace_id for s in spans)


# ---------------------------------------------------------------------------
# Warm-start store
# ---------------------------------------------------------------------------

class TestWarmStartStore:
    def test_paths_are_per_slot(self, tmp_path):
        store = WarmStartStore(tmp_path)
        assert store.path_for("0") != store.path_for("1")
        assert not store.has_snapshot("0")
        assert store.configs("0") == 0

    def test_reads_tuner_save_format(self, tmp_path):
        from repro.serve import AutoTuner

        store = WarmStartStore(tmp_path)
        tuner = AutoTuner(path=store.path_for("0"))
        tuner.save()
        assert store.has_snapshot("0")
        assert store.configs("0") == 0  # empty table, valid file
        assert store.slots() == ["0"]

    def test_corrupt_snapshot_reads_as_none(self, tmp_path):
        store = WarmStartStore(tmp_path)
        store.path_for("0").write_text("{not json")
        assert store.read("0") is None
        assert store.configs("0") == 0


# ---------------------------------------------------------------------------
# run_batch op (in-process ShardServer.handle — no sockets)
# ---------------------------------------------------------------------------

class TestRunBatchOp:
    """One frame, N same-signature requests, one (N, H, W) reply payload."""

    @pytest.fixture(scope="class")
    def shard(self):
        from repro.cluster.worker import ShardServer

        server = ShardServer(slot="t0", engine_kwargs={
            "workers": 1, "batch_size": 8})
        yield server
        server.close()

    def _stack(self, n=4, size=48, seed=5):
        rng = np.random.default_rng(seed)
        return rng.random((n, size, size)).astype(np.float32)

    def test_array_mode_bit_exact(self, shard):
        from repro.serve.plan import build_plan

        stack = self._stack()
        meta, payload = encode_array(stack)
        reply, out_payload = shard.handle({
            "op": "run_batch", "app": "gaussian", "pattern": "mirror",
            "variant": "prepad", "array": meta,
        }, payload)
        assert reply["ok"], reply
        assert reply["count"] == 4
        assert reply["slot"] == "t0"
        assert all(row["ok"] for row in reply["results"])
        assert all(row["variant"] == "prepad" for row in reply["results"])
        outputs = decode_array(reply["array"], out_payload)
        assert outputs.shape == stack.shape
        plan = build_plan("gaussian", "mirror", 48, 48, variant="prepad")
        for i in range(stack.shape[0]):
            assert np.array_equal(outputs[i], plan.execute(stack[i])), i

    def test_digest_mode(self, shard):
        from repro.serve.plan import build_plan

        stack = self._stack(n=3)
        meta, payload = encode_array(stack)
        reply, out_payload = shard.handle({
            "op": "run_batch", "app": "sobel", "variant": "prepad",
            "array": meta, "return": "digest",
        }, payload)
        assert reply["ok"], reply
        assert out_payload == b""
        plan = build_plan("sobel", "clamp", 48, 48, variant="prepad")
        assert reply["digests"] == [
            array_digest(plan.execute(stack[i])) for i in range(3)
        ]

    def test_empty_payload_rejected(self, shard):
        with pytest.raises(ProtocolError, match="inline"):
            shard.handle({"op": "run_batch", "app": "gaussian"}, b"")

    def test_non_batch_shape_rejected(self, shard):
        meta, payload = encode_array(
            np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(ProtocolError, match=r"\(N, H, W\)"):
            shard.handle({"op": "run_batch", "app": "gaussian",
                          "array": meta}, payload)
