"""Unit tests for IRBuilder and the verifier."""

import pytest

from repro.ir import (
    CmpOp,
    DataType,
    IRBuilder,
    IRVerificationError,
    Opcode,
    Param,
    SpecialReg,
    verify,
)


def minimal(name="k"):
    b = IRBuilder(name, [Param("n", DataType.S32)])
    b.new_block("entry")
    return b


class TestBuilder:
    def test_fresh_registers_unique(self):
        b = minimal()
        regs = {b.fresh_reg(DataType.S32).name for _ in range(100)}
        assert len(regs) == 100

    def test_fresh_labels_unique(self):
        b = minimal()
        labels = {b.fresh_label() for _ in range(50)}
        assert len(labels) == 50

    def test_duplicate_block_label_rejected(self):
        b = minimal()
        with pytest.raises(ValueError, match="duplicate"):
            b.new_block("entry")

    def test_dtype_inference(self):
        b = minimal()
        n = b.ld_param("n")
        r = b.add(n, 1)
        assert r.dtype is DataType.S32
        f = b.mul(b.imm(1.0, DataType.F32), 2.0)
        assert f.dtype is DataType.F32

    def test_literal_only_requires_dtype(self):
        b = minimal()
        with pytest.raises(ValueError, match="infer"):
            b.add(1, 2)

    def test_region_and_role_tags(self):
        b = minimal()
        n = b.ld_param("n")
        with b.region("TL"), b.role("check"):
            r = b.add(n, 1)
        del r
        b.exit()
        tagged = [i for i in b.function.instructions() if i.region == "TL"]
        assert len(tagged) == 1
        assert tagged[0].role == "check"

    def test_emit_after_terminator_fails(self):
        b = minimal()
        b.exit()
        with pytest.raises(ValueError, match="terminated"):
            b.exit()

    def test_special_register_read(self):
        b = minimal()
        t = b.special(SpecialReg.TID_X)
        assert t.dtype is DataType.S32
        instr = b.function.entry.instructions[-1]
        assert instr.op is Opcode.MOV and instr.special is SpecialReg.TID_X


class TestVerifier:
    def test_accepts_wellformed(self):
        b = minimal()
        n = b.ld_param("n")
        p = b.setp(CmpOp.GT, n, 0)
        b.cbr(p, "pos", "done")
        b.new_block("pos")
        b.br("done")
        b.new_block("done")
        b.exit()
        verify(b.finish())  # no raise

    def test_missing_terminator(self):
        b = minimal()
        b.ld_param("n")
        with pytest.raises(IRVerificationError, match="terminator"):
            verify(b.finish())

    def test_branch_to_unknown_label(self):
        b = minimal()
        b.br("nowhere")
        with pytest.raises(IRVerificationError, match="unknown label"):
            verify(b.finish())

    def test_unknown_parameter(self):
        b = minimal()
        from repro.ir import Instruction, Register

        b.block.append(
            Instruction(Opcode.LDPARAM, DataType.S32,
                        Register("x", DataType.S32), [], param="missing")
        )
        b.exit()
        with pytest.raises(IRVerificationError, match="unknown parameter"):
            verify(b.finish())

    def test_undefined_register_use(self):
        from repro.ir import Register

        b = minimal()
        ghost = Register("ghost", DataType.S32)
        b.add(ghost, 1)
        b.exit()
        with pytest.raises(IRVerificationError, match="undefined register"):
            verify(b.finish())

    def test_register_type_conflict(self):
        from repro.ir import Instruction, Register

        b = minimal()
        b.mov(b.imm(1, DataType.S32))
        # Manually forge a reuse of the same name at a different type.
        name = b.function.entry.instructions[-1].dst.name
        b.block.append(
            Instruction(Opcode.MOV, DataType.F32, Register("other", DataType.F32),
                        [Register(name, DataType.F32)])
        )
        b.exit()
        with pytest.raises(IRVerificationError, match="used as"):
            verify(b.finish())

    def test_unreachable_block(self):
        b = minimal()
        b.exit()
        b.new_block("orphan")
        b.exit()
        with pytest.raises(IRVerificationError, match="unreachable"):
            verify(b.finish())

    def test_load_address_type(self):
        b = minimal()
        n = b.ld_param("n")  # s32, not a valid address
        from repro.ir import Instruction, Register

        b.block.append(
            Instruction(Opcode.LD, DataType.F32, Register("v", DataType.F32), [n])
        )
        b.exit()
        with pytest.raises(IRVerificationError, match="address must be u32"):
            verify(b.finish())

    def test_selp_selector_must_be_pred(self):
        from repro.ir import Instruction, Register

        b = minimal()
        n = b.ld_param("n")
        b.block.append(
            Instruction(Opcode.SELP, DataType.S32, Register("d", DataType.S32),
                        [n, n, n])
        )
        b.exit()
        with pytest.raises(IRVerificationError, match="selector"):
            verify(b.finish())

    def test_empty_function(self):
        b = IRBuilder("empty", [])
        with pytest.raises(IRVerificationError, match="no blocks"):
            verify(b.finish())

    def test_conditional_branch_needs_else(self):
        from repro.ir import Instruction

        b = minimal()
        n = b.ld_param("n")
        p = b.setp(CmpOp.GT, n, 0)
        b.block.append(
            Instruction(Opcode.BRA, DataType.S32, pred=p, target="entry")
        )
        with pytest.raises(IRVerificationError, match="else"):
            verify(b.finish())
