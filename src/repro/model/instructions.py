"""Instruction-count model — paper Eqs. 3-6 and 9.

Estimates total executed instructions for the naive and the ISP
implementation from the calibration aggregates and the block-count model.
Faithful to the paper's formulation with one normalization: the paper's
Eq. 5 multiplies ``n_switch(p)`` by the window area ``m*n`` alongside the
per-tap region cost; since the dispatch chain executes once per *thread*,
we keep switch cost per-thread and add it outside the per-tap product
(equivalently: the paper's ``n_switch`` is ours divided by ``m*n``).
"""

from __future__ import annotations

import dataclasses

from ..compiler.regions import REGION_CHECKS, Region
from .blocks import ModelBlockCounts, block_counts
from .calibration import Calibration, switch_cost


@dataclasses.dataclass(frozen=True)
class InstructionEstimate:
    """Eq. 3/4 outputs plus the per-region breakdown."""

    n_naive: float
    n_isp: float
    per_region: dict[Region, float]
    blocks: ModelBlockCounts

    @property
    def r_reduced(self) -> float:
        """Paper Eq. 9: N_naive / N_ISP."""
        return self.n_naive / self.n_isp if self.n_isp > 0 else float("inf")


def _check_sides_available(window: tuple[int, int]) -> int:
    m, n = window
    sides = 0
    if m > 1:
        sides += 2
    if n > 1:
        sides += 2
    return sides


def region_cost_per_pixel(cal: Calibration, region: Region) -> float:
    """Paper Eq. 6: per-pixel cost of one region's specialized body.

    Corners pay 2 of the available border checks, edges 1, Body 0 — scaled
    from the calibrated all-checks aggregate.
    """
    available = _check_sides_available(cal.window)
    if available == 0:
        return cal.kernel_per_pixel
    m, n = cal.window
    relevant = set(REGION_CHECKS[region])
    if m <= 1:
        relevant -= {"left", "right"}
    if n <= 1:
        relevant -= {"top", "bottom"}
    frac = len(relevant) / available
    return cal.kernel_per_pixel + frac * cal.check_per_pixel


def estimate_instructions(
    cal: Calibration,
    sx: int,
    sy: int,
    tx: int,
    ty: int,
) -> InstructionEstimate:
    """Eqs. 3-6: N_naive and N_ISP for an sx x sy image, tx x ty blocks."""
    m, n = cal.window
    # Eq. 3: naive executes kernel + all checks for every output pixel.
    n_naive = (cal.check_per_pixel + cal.kernel_per_pixel) * sx * sy

    blocks = block_counts(sx, sy, m, n, tx, ty)
    block_pixels = tx * ty
    per_region: dict[Region, float] = {}
    for region, count in blocks.counts.items():
        if count <= 0:
            per_region[region] = 0.0
            continue
        body_cost = region_cost_per_pixel(cal, region) * block_pixels
        sw = switch_cost(region) * block_pixels  # once per thread
        per_region[region] = count * (body_cost + sw)
    n_isp = sum(per_region.values())  # Eq. 4
    return InstructionEstimate(
        n_naive=n_naive, n_isp=n_isp, per_region=per_region, blocks=blocks
    )
