"""Region geometry tests — paper Eq. 2 / Figure 1, exact by construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.regions import (
    REGION_CHECKS,
    SWITCH_ORDER,
    Region,
    RegionGeometry,
)


def brute_force_checks(geom: RegionGeometry, bx: int, by: int) -> frozenset:
    """Directly compute which sides block (bx, by) needs from the window."""
    tx, ty = geom.block
    sides = set()
    x_lo = bx * tx
    x_hi = min((bx + 1) * tx, geom.width) - 1
    y_lo = by * ty
    y_hi = min((by + 1) * ty, geom.height) - 1
    if x_lo - geom.hx < 0:
        sides.add("left")
    if x_hi + geom.hx >= geom.width:
        sides.add("right")
    if y_lo - geom.hy < 0:
        sides.add("top")
    if y_hi + geom.hy >= geom.height:
        sides.add("bottom")
    return frozenset(sides)


geometries = st.builds(
    RegionGeometry.compute,
    st.integers(8, 600),       # width
    st.integers(8, 600),       # height
    st.integers(0, 20),        # hx
    st.integers(0, 20),        # hy
    st.tuples(st.sampled_from([8, 16, 32, 64]), st.sampled_from([1, 2, 4, 8])),
)


class TestGeometryProperties:
    @settings(max_examples=200)
    @given(geom=geometries)
    def test_classification_matches_brute_force(self, geom):
        """Every block's region must demand exactly the checks a direct
        window analysis says it needs (soundness of Eq. 2)."""
        if geom.degenerate:
            return
        gx, gy = geom.grid
        for by in range(gy):
            for bx in range(gx):
                region = geom.classify(bx, by)
                assert REGION_CHECKS[region] == brute_force_checks(geom, bx, by), (
                    geom, bx, by, region,
                )

    @settings(max_examples=100)
    @given(geom=geometries)
    def test_block_counts_match_classification(self, geom):
        if geom.degenerate:
            return
        gx, gy = geom.grid
        tally = {r: 0 for r in Region}
        for by in range(gy):
            for bx in range(gx):
                tally[geom.classify(bx, by)] += 1
        assert tally == geom.block_counts()

    @settings(max_examples=100)
    @given(geom=geometries)
    def test_representatives_belong_to_their_region(self, geom):
        if geom.degenerate:
            return
        counts = geom.block_counts()
        for region in Region:
            rep = geom.representative(region)
            if counts[region] == 0:
                assert rep is None
            else:
                assert rep is not None
                assert geom.classify(*rep) is region

    @settings(max_examples=100)
    @given(geom=geometries)
    def test_feasible_regions_in_switch_order(self, geom):
        if geom.degenerate:
            return
        feas = geom.feasible_regions()
        order = [SWITCH_ORDER.index(r) for r in feas]
        assert order == sorted(order)
        counts = geom.block_counts()
        assert set(feas) == {r for r, c in counts.items() if c > 0}


class TestConcreteGeometry:
    def test_paper_configuration(self):
        """Bilateral 13x13 (hx=hy=6), 2048x2048, 32x4 blocks."""
        geom = RegionGeometry.compute(2048, 2048, 6, 6, (32, 4))
        assert geom.grid == (64, 512)
        assert geom.bh_l == 1
        assert geom.bh_t == 2
        assert geom.bh_r == 63
        assert geom.bh_b == 510
        counts = geom.block_counts()
        assert counts[Region.TL] == 2
        assert counts[Region.BODY] == 62 * 508
        assert geom.body_fraction() == pytest.approx(62 * 508 / (64 * 512))

    def test_body_fraction_grows_with_size(self):
        """Paper Figure 3: larger images put more blocks in Body."""
        fracs = [
            RegionGeometry.compute(s, s, 2, 2, (32, 4)).body_fraction()
            for s in (128, 256, 512, 1024, 2048, 4096)
        ]
        assert all(b >= a for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] > 0.95

    def test_degenerate_tiny_image(self):
        geom = RegionGeometry.compute(8, 8, 6, 6, (32, 4))
        assert geom.degenerate
        with pytest.raises(ValueError):
            geom.representative(Region.BODY)

    def test_point_operator_geometry(self):
        geom = RegionGeometry.compute(64, 64, 0, 0, (32, 4))
        assert not geom.degenerate
        assert geom.block_counts()[Region.BODY] == geom.grid[0] * geom.grid[1]
        assert geom.feasible_regions() == [Region.BODY]

    def test_classify_rejects_outside(self):
        geom = RegionGeometry.compute(64, 64, 1, 1, (32, 4))
        with pytest.raises(ValueError):
            geom.classify(99, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RegionGeometry.compute(0, 64, 1, 1, (32, 4))
        with pytest.raises(ValueError):
            RegionGeometry.compute(64, 64, -1, 1, (32, 4))
