"""Source-to-source compiler: DSL kernels -> naive / ISP / warp-ISP variants.

The Python analogue of the Hipacc compiler pipeline (paper Section V):
``frontend`` traces the kernel, ``regions`` derives the partitioning
geometry (Eq. 2), ``border``/``lowering``/``isp`` generate the variants
(Listings 1, 3, 5), ``passes`` optimizes, ``registers`` estimates pressure,
and ``driver`` orchestrates.
"""

from .border import instructions_per_side
from .codegen_cuda import emit_cuda
from .driver import DEFAULT_BLOCK, CompiledKernel, compile_kernel
from .frontend import FrontendError, KernelDescription, canonical_expr, trace_kernel
from .fusion import FusedPlan, cumulative_halos, fuse_descs
from .fusion_simt import (
    CompiledFusedKernel,
    FusedSmemLayout,
    compile_fused_simt,
    fused_smem_bytes,
    generate_fused_simt,
    plan_fused_smem,
)
from .isp import CompileError, Variant, generate_isp, generate_naive, generate_texture
from .passes import (
    eliminate_dead_code,
    fold_constants,
    optimize,
    propagate_copies,
)
from .regions import REGION_CHECKS, SWITCH_ORDER, Region, RegionGeometry
from .shared import generate_shared, shared_tile_bytes
from .registers import RegisterEstimate, estimate_registers, max_live_registers

__all__ = [
    "DEFAULT_BLOCK",
    "REGION_CHECKS",
    "SWITCH_ORDER",
    "CompileError",
    "CompiledFusedKernel",
    "CompiledKernel",
    "FrontendError",
    "FusedPlan",
    "FusedSmemLayout",
    "KernelDescription",
    "Region",
    "RegionGeometry",
    "RegisterEstimate",
    "Variant",
    "canonical_expr",
    "compile_fused_simt",
    "compile_kernel",
    "cumulative_halos",
    "fuse_descs",
    "fused_smem_bytes",
    "emit_cuda",
    "eliminate_dead_code",
    "estimate_registers",
    "fold_constants",
    "generate_fused_simt",
    "generate_isp",
    "generate_naive",
    "generate_shared",
    "generate_texture",
    "plan_fused_smem",
    "shared_tile_bytes",
    "instructions_per_side",
    "max_live_registers",
    "optimize",
    "propagate_copies",
    "trace_kernel",
]
