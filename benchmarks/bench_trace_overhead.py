"""Tracing overhead — the disarmed hot path must stay free.

``repro.trace`` promises :mod:`repro.faults`' deal: every instrumentation
site guards behind one module-global pointer check, so a service that never
installs a tracer (or installs one with ``sample_rate=0.0``) pays nothing
measurable. This benchmark prices that promise on a warm engine:

* **baseline** — no tracer installed (the pointer check fails immediately);
* **disabled** — a tracer installed with ``sample_rate=0.0`` (the check
  passes, head sampling rejects every request before any span exists).

Both run the same warmed workload in alternating rounds (best-of-N, so a
one-off scheduler hiccup cannot fail the gate) and the disabled-tracing
throughput must stay within 3% of baseline — the PR's acceptance criterion.
A fully-traced round then sanity-checks that sampling at 1.0 actually
records spans on this same workload (guarding against a gate that "passes"
because instrumentation silently stopped firing).
"""

from __future__ import annotations

import time

from repro.serve import ServeEngine
from repro.serve.bench import build_workload
from repro.trace import Tracer, recording

from harness import stable_seed

ROUNDS = 5
REQUESTS = 80
TOLERANCE = 0.03


def _throughput(engine: ServeEngine, requests) -> float:
    t0 = time.perf_counter()
    responses = engine.run(requests)
    elapsed = time.perf_counter() - t0
    assert all(r.ok for r in responses)
    return len(responses) / elapsed


def run_overhead_comparison() -> dict:
    requests = build_workload(
        REQUESTS, size=64, seed=stable_seed("bench_trace_overhead"),
        apps=("gaussian", "laplace", "sobel"), patterns=("clamp",))
    disabled_tracer = Tracer(sample_rate=0.0)

    with ServeEngine(workers=4) as engine:
        engine.run(requests)  # warm the plan cache once for both configs

        baseline: list[float] = []
        disabled: list[float] = []
        for _ in range(ROUNDS):  # alternate so drift hits both configs
            baseline.append(_throughput(engine, requests))
            with recording(disabled_tracer):
                disabled.append(_throughput(engine, requests))
        assert disabled_tracer.spans() == []  # rate 0.0 recorded nothing

        # Sanity: at rate 1.0 the same sites DO fire on this workload.
        traced_tracer = Tracer()
        with recording(traced_tracer):
            traced_rps = _throughput(engine, requests)
        assert len(traced_tracer.spans()) >= 3 * REQUESTS

    return {
        "baseline_rps": max(baseline),
        "disabled_rps": max(disabled),
        "traced_rps": traced_rps,
        "rounds": ROUNDS,
        "requests": REQUESTS,
        "ratio": max(disabled) / max(baseline),
    }


def test_trace_overhead_gate(benchmark, report):
    data = benchmark.pedantic(run_overhead_comparison, rounds=1, iterations=1)
    text = (
        "tracing overhead (best of "
        f"{data['rounds']} alternating rounds, {data['requests']} requests)\n"
        f"  baseline (no tracer):        {data['baseline_rps']:8.1f} rps\n"
        f"  installed, sample_rate=0.0:  {data['disabled_rps']:8.1f} rps "
        f"({100 * (data['ratio'] - 1):+.2f}%)\n"
        f"  installed, sample_rate=1.0:  {data['traced_rps']:8.1f} rps"
    )
    report("trace_overhead", text, data=data)
    assert data["ratio"] >= 1.0 - TOLERANCE, (
        f"disabled tracing cost {100 * (1 - data['ratio']):.2f}% "
        f"(> {100 * TOLERANCE:.0f}% budget)"
    )
