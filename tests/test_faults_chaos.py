"""Chaos suite: seeded fault scenarios swept through the serve engine.

Every scenario arms a deterministic :class:`repro.faults.FaultPlan` and
pushes a workload through :class:`~repro.serve.ServeEngine`, then asserts the
three invariants the serving stack promises under *any* failure:

1. **No request is lost or hung** — every submitted request gets exactly one
   response within the watchdog timeout.
2. **Failures are typed** — a non-ok response carries an ``error_kind`` from
   :data:`repro.serve.ERROR_KINDS`, never a bare stringly mystery.
3. **Successes are bit-exact** — whatever degradations a request survived
   (retries, simt->vectorized, isp->naive via compile fallback or circuit
   breaker, eviction storms), its pixels equal the NumPy reference filter
   (``repro.filters.reference``) bit for bit. Degradation may change *how*
   a request is served, never *what* it computes.

Scenarios run under three fixed seeds (the CI ``chaos`` job's contract); a
seed changes which occurrences fire, not the invariants.

The apps used here are the ones whose DSL pipelines are bit-exact against
their references (gaussian/laplace/sobel/night — bilateral's reference is
deliberately approximate and is covered by tolerance tests elsewhere).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro import faults
from repro.dsl import Boundary
from repro.faults import FaultPlan, FaultSpec
from repro.filters import REFERENCES
from repro.serve import ERROR_KINDS, AutoTuner, Request, ServeEngine

SEEDS = (101, 202, 303)

#: Watchdog: a request still unanswered after this long counts as hung.
WATCHDOG_S = 120.0


@functools.lru_cache(maxsize=None)
def chaos_image(seed: int, size: int = 48) -> np.ndarray:
    return np.random.default_rng(seed).random((size, size)).astype(np.float32)


@functools.lru_cache(maxsize=None)
def reference_output(app: str, pattern: str, seed: int, size: int = 48) -> np.ndarray:
    return REFERENCES[app](chaos_image(seed, size), Boundary(pattern), 0.0)


def run_scenario(plan: FaultPlan, requests: list[Request], **engine_kwargs):
    """Drive one armed engine run; TimeoutError here == a hung request."""
    with faults.armed(plan) as injector:
        with ServeEngine(**engine_kwargs) as engine:
            handles = [engine.submit(r, block=True) for r in requests]
            responses = [h.result(timeout=WATCHDOG_S) for h in handles]
            stats = engine.stats()
    return responses, stats, injector


def assert_invariants(requests, responses, *, seed: int, size: int = 48):
    """The three chaos invariants, checked response by response."""
    assert len(responses) == len(requests), "lost requests"
    for req, resp in zip(requests, responses):
        assert resp.request_id == req.request_id
        if resp.ok:
            expected = reference_output(req.app, req.pattern, seed, size)
            assert resp.output is not None
            assert np.array_equal(resp.output, expected), (
                f"request {req.request_id} ({req.app}/{req.pattern}) served "
                f"wrong pixels after fallbacks={resp.fallbacks}"
            )
        else:
            assert resp.error_kind in ERROR_KINDS, (
                f"untyped failure: {resp.error!r} (kind={resp.error_kind!r})"
            )
            assert resp.error


@pytest.mark.parametrize("seed", SEEDS)
class TestChaosScenarios:
    # 1 ------------------------------------------------------------------
    def test_transient_exec_faults_recovered_by_retry(self, seed):
        """First execution attempt of every request fails; retries recover
        all of them — zero user-visible errors."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.execute", "error", at=(0,)),
        ])
        requests = [Request(app="gaussian", image=chaos_image(seed),
                            pattern="clamp", variant="isp")
                    for _ in range(8)]
        responses, stats, _ = run_scenario(plan, requests, workers=2)
        assert_invariants(requests, responses, seed=seed)
        assert all(r.ok for r in responses)
        assert all(r.retries >= 1 for r in responses)
        assert stats["engine"]["engine.retries"] >= len(requests)

    # 2 ------------------------------------------------------------------
    def test_persistent_exec_faults_fail_typed_only_where_injected(self, seed):
        """Unbounded faults on one app exhaust its retry budget and fail
        typed; the co-scheduled app is untouched."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.execute", "error",
                           match={"app": "laplace"}),
        ])
        requests = []
        for i in range(6):
            requests.append(Request(app="laplace", image=chaos_image(seed),
                                    pattern="repeat", variant="isp"))
            requests.append(Request(app="sobel", image=chaos_image(seed),
                                    pattern="repeat", variant="isp"))
        responses, _, _ = run_scenario(plan, requests, workers=2, retries=1)
        assert_invariants(requests, responses, seed=seed)
        by_app = {"laplace": [], "sobel": []}
        for req, resp in zip(requests, responses):
            by_app[req.app].append(resp)
        assert all(not r.ok and r.error_kind == "execution"
                   for r in by_app["laplace"])
        assert all(r.ok for r in by_app["sobel"])

    # 3 ------------------------------------------------------------------
    def test_worker_crashes_fail_batches_typed_and_engine_survives(self, seed):
        """Workers die mid-batch; the containment net fails those batches
        with error_kind="worker_crash" and the pool keeps serving."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.worker", "crash", rate=0.4,
                           max_fires=4),
        ])
        requests = [Request(app="gaussian", image=chaos_image(seed),
                            pattern="mirror", variant="isp")
                    for _ in range(16)]
        responses, stats, injector = run_scenario(
            plan, requests, workers=2, batch_size=2)
        assert_invariants(requests, responses, seed=seed)
        crashes = injector.counts().get("serve.engine.worker", 0)
        assert stats["engine"]["engine.worker_crashes"] == crashes
        crashed = [r for r in responses if not r.ok]
        assert all(r.error_kind == "worker_crash" for r in crashed)
        # the pool survived every crash: later requests were still served
        assert any(r.ok for r in responses)

    # 4 ------------------------------------------------------------------
    def test_breaker_reroutes_persistently_failing_variant(self, seed):
        """ISP executions always fail -> the circuit trips and later
        requests are served naive, bit-exact."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("runtime.vectorized.kernel", "error",
                           match={"variant": "isp"}),
        ])
        requests = [Request(app="gaussian", image=chaos_image(seed),
                            pattern="clamp", variant="isp")
                    for _ in range(10)]
        responses, stats, _ = run_scenario(
            plan, requests, workers=1, batch_size=1, retries=1,
            breaker_threshold=3, breaker_cooldown=32)
        assert_invariants(requests, responses, seed=seed)
        assert stats["engine"]["breaker.opened"] >= 1
        rerouted = [r for r in responses
                    if any(f.startswith("breaker:isp->naive")
                           for f in r.fallbacks)]
        assert rerouted, "breaker never rerouted"
        assert all(r.ok for r in rerouted)
        assert stats["breaker"]["isp"]["state"] != "closed"

    # 5 ------------------------------------------------------------------
    def test_simt_redzone_degrades_to_vectorized(self, seed):
        """A redzone trap inside the SIMT simulation degrades the request to
        the vectorized path — same pixels, one fallback marker."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("gpu.memory.redzone", "error", at=(0,),
                           max_fires=2),
        ])
        size = 24
        requests = [Request(app="gaussian", image=chaos_image(seed, size),
                            pattern="clamp", variant="naive",
                            exec_mode="simt")
                    for _ in range(3)]
        responses, stats, injector = run_scenario(plan, requests, workers=1)
        assert_invariants(requests, responses, seed=seed, size=size)
        assert all(r.ok for r in responses)
        hit = injector.counts().get("gpu.memory.redzone", 0)
        assert hit >= 1
        assert stats["engine"]["engine.fallbacks_error"] >= 1
        assert any("error:simt->vectorized" in r.fallbacks for r in responses)

    # 6 ------------------------------------------------------------------
    def test_latency_spike_trips_simt_timeout_fallback(self, seed):
        """An injected latency spike burns the request budget before the
        simulation starts; the engine degrades to vectorized instead of
        hanging."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.execute", "latency", at=(0,),
                           seconds=0.3),
        ])
        size = 24
        requests = [Request(app="gaussian", image=chaos_image(seed, size),
                            pattern="repeat", variant="naive",
                            exec_mode="simt", timeout_s=0.2)
                    for _ in range(3)]
        responses, stats, _ = run_scenario(plan, requests, workers=1)
        assert_invariants(requests, responses, seed=seed, size=size)
        assert all(r.ok for r in responses)
        assert stats["engine"]["engine.fallbacks_timeout"] >= 1
        assert any("timeout:simt->vectorized" in r.fallbacks
                   for r in responses)

    # 7 ------------------------------------------------------------------
    def test_eviction_storm_only_costs_rebuilds(self, seed):
        """The plan cache is flushed before every lookup; throughput suffers,
        correctness must not."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.cache.evict", "evict"),
        ])
        requests = [Request(app=app, image=chaos_image(seed), pattern=pat,
                            variant="isp")
                    for app, pat in [("gaussian", "clamp"), ("sobel", "mirror"),
                                     ("laplace", "repeat")] * 4]
        responses, stats, _ = run_scenario(
            plan, requests, workers=2, batch_size=1)
        assert_invariants(requests, responses, seed=seed)
        assert all(r.ok for r in responses)
        assert stats["plan_cache"]["forced_evictions"] > 0

    # 8 ------------------------------------------------------------------
    def test_injected_sanitizer_rejection_fails_loud_and_typed(self, seed):
        """A sanitizer rejection must fail the plan's requests with
        error_kind="sanitize" — degrading around a bounds finding would mean
        serving potentially corrupt pixels."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.sanitize", "reject",
                           match={"app": "gaussian"}),
        ])
        requests = []
        for _ in range(4):
            requests.append(Request(app="gaussian", image=chaos_image(seed),
                                    pattern="constant", variant="isp"))
            requests.append(Request(app="night", image=chaos_image(seed),
                                    pattern="constant", variant="isp"))
        responses, stats, _ = run_scenario(plan, requests, workers=2)
        assert_invariants(requests, responses, seed=seed)
        for req, resp in zip(requests, responses):
            if req.app == "gaussian":
                assert not resp.ok and resp.error_kind == "sanitize"
            else:
                assert resp.ok
        assert stats["engine"]["engine.plans_sanitize_rejected"] >= 1

    # 9 ------------------------------------------------------------------
    def test_corrupt_tuner_persistence_is_a_cold_start_not_an_outage(
            self, seed, tmp_path):
        """The warm-restart file is corrupted on disk; the engine boots with
        an empty table and "auto" requests still serve bit-exact."""
        path = tmp_path / "tuner.json"
        AutoTuner(path=path).save()
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.autotune.load", "corrupt"),
        ])
        requests = [Request(app="sobel", image=chaos_image(seed),
                            pattern="clamp", variant="auto")
                    for _ in range(6)]
        responses, stats, _ = run_scenario(
            plan, requests, workers=1, autotune_path=str(path))
        assert_invariants(requests, responses, seed=seed)
        assert all(r.ok for r in responses)
        assert stats["engine"]["tuner.load_errors"] == 1

    # 10 -----------------------------------------------------------------
    def test_transient_vectorized_faults_recovered(self, seed):
        """A burst of two kernel-evaluation failures is absorbed by the retry
        budget without a single failed response."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("runtime.vectorized.kernel", "error",
                           rate=1.0, max_fires=2),
        ])
        requests = [Request(app="laplace", image=chaos_image(seed),
                            pattern="mirror", variant="isp")
                    for _ in range(6)]
        responses, stats, _ = run_scenario(plan, requests, workers=1)
        assert_invariants(requests, responses, seed=seed)
        assert all(r.ok for r in responses)
        assert stats["engine"]["engine.retries"] >= 1

    # 11 -----------------------------------------------------------------
    def test_mixed_storm_holds_all_invariants(self, seed):
        """Everything at once, at partial rates: crashes, transient execution
        faults, eviction storms and latency spikes. Only the invariants are
        asserted — this is the scenario that catches interactions."""
        plan = FaultPlan.make(seed, [
            FaultSpec.make("serve.engine.worker", "crash", rate=0.15,
                           max_fires=2),
            FaultSpec.make("serve.engine.execute", "error", rate=0.3,
                           max_fires=6),
            FaultSpec.make("serve.cache.evict", "evict", rate=0.3),
            FaultSpec.make("runtime.vectorized.kernel", "latency", rate=0.1,
                           seconds=0.01),
        ])
        requests = [Request(app=app, image=chaos_image(seed), pattern=pat,
                            variant="isp")
                    for app, pat in [("gaussian", "clamp"), ("laplace", "mirror"),
                                     ("sobel", "repeat"), ("night", "clamp")] * 5]
        responses, _, injector = run_scenario(
            plan, requests, workers=3, batch_size=2)
        assert_invariants(requests, responses, seed=seed)
        assert injector.trace(), "storm injected nothing"


def test_disarmed_registry_leaves_serving_untouched():
    """With no plan armed the fault points are inert: a plain run serves
    everything bit-exact and records no fault metrics."""
    assert faults.active() is None
    seed = SEEDS[0]
    requests = [Request(app="gaussian", image=chaos_image(seed),
                        pattern="clamp", variant="isp") for _ in range(4)]
    with ServeEngine(workers=2) as engine:
        responses = engine.run(requests)
        stats = engine.stats()
    assert_invariants(requests, responses, seed=seed)
    assert all(r.ok for r in responses)
    assert stats["engine"]["engine.faults_observed"] == 0
    assert "faults" not in stats
