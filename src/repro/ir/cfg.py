"""Control-flow-graph analyses for kernel functions.

The SIMT simulator reconverges divergent warps at the *immediate
post-dominator* of the branch block — the textbook stack-based reconvergence
model used by GPGPU-Sim and by real SIMT hardware descriptions. We compute
post-dominators with :mod:`networkx` on the reversed CFG augmented with a
virtual exit node.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from .function import KernelFunction

#: Name of the virtual exit node used for post-dominator computation.
VIRTUAL_EXIT = "__exit__"


def build_cfg(func: KernelFunction) -> nx.DiGraph:
    """Directed graph over block labels; exit blocks edge into VIRTUAL_EXIT."""
    g = nx.DiGraph()
    g.add_node(VIRTUAL_EXIT)
    for block in func.blocks:
        g.add_node(block.label)
    for block in func.blocks:
        succs = block.successor_labels()
        if not succs:
            g.add_edge(block.label, VIRTUAL_EXIT)
        for s in succs:
            g.add_edge(block.label, s)
    return g


def reachable_blocks(func: KernelFunction) -> set[str]:
    g = build_cfg(func)
    reach = set(nx.descendants(g, func.entry.label)) | {func.entry.label}
    reach.discard(VIRTUAL_EXIT)
    return reach


def immediate_postdominators(func: KernelFunction) -> dict[str, Optional[str]]:
    """Map block label -> label of its immediate post-dominator.

    Blocks whose ipdom is the virtual exit map to ``None`` (the warp simply
    runs to completion past them). Unreachable blocks are absent from the map.
    """
    g = build_cfg(func)
    entry = func.entry.label
    keep = set(nx.descendants(g, entry)) | {entry}
    if VIRTUAL_EXIT not in keep:
        # No reachable exit (e.g. an infinite loop): nothing post-dominates.
        return {label: None for label in keep}
    rg = g.subgraph(keep).reverse(copy=True)
    idom = nx.immediate_dominators(rg, VIRTUAL_EXIT)
    result: dict[str, Optional[str]] = {}
    for label in keep:
        if label == VIRTUAL_EXIT:
            continue
        ip = idom.get(label)
        result[label] = None if ip in (None, VIRTUAL_EXIT) else ip
    return result


def back_edges(func: KernelFunction) -> set[tuple[str, str]]:
    """DFS back edges — presence indicates loops (Repeat border pattern)."""
    g = build_cfg(func)
    g.remove_node(VIRTUAL_EXIT)
    edges: set[tuple[str, str]] = set()
    color: dict[str, int] = {}
    stack = [(func.entry.label, iter(g.successors(func.entry.label)))]
    color[func.entry.label] = 1
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if color.get(succ, 0) == 0:
                color[succ] = 1
                stack.append((succ, iter(g.successors(succ))))
                advanced = True
                break
            if color.get(succ) == 1:
                edges.add((node, succ))
        if not advanced:
            color[node] = 2
            stack.pop()
    return edges


def has_loops(func: KernelFunction) -> bool:
    return bool(back_edges(func))
