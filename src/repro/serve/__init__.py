"""``repro.serve`` — batched execution service over the compiler/runtime.

The production-shaped front door of the reproduction (see docs/serving.md):

* :mod:`~repro.serve.plan` — :class:`ExecutionPlan` (trace + model-based
  variant selection, done once per distinct workload) and its content-hash
  :class:`PlanKey`;
* :mod:`~repro.serve.cache` — :class:`PlanCache`, a thread-safe LRU with
  single-flight builds;
* :mod:`~repro.serve.engine` — :class:`ServeEngine`: bounded queue with
  backpressure, micro-batching by workload signature, a worker pool,
  per-request timeouts and graceful degradation;
* :mod:`~repro.serve.metrics` — counters/histograms behind
  :meth:`ServeEngine.stats`;
* :mod:`~repro.serve.bench` — the ``serve-bench`` synthetic workload.
"""

from .autotune import (
    TUNE_CANDIDATES,
    AutoTuner,
    TunerKey,
    pipeline_gain,
    pipeline_priors,
    tuner_key,
)
from .bench import build_workload, format_report, run_baseline, run_serve_bench
from .breaker import VariantBreaker
from .cache import PlanCache
from .engine import (
    ERROR_KINDS,
    EngineClosed,
    EngineSaturated,
    Request,
    Response,
    ResponseHandle,
    ServeEngine,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .plan import (
    EXEC_MODES,
    PLAN_VARIANTS,
    REQUEST_VARIANTS,
    ExecutionPlan,
    PlanKey,
    build_plan,
    combined_digest,
    plan_key,
    trace_app,
)

__all__ = [
    "ERROR_KINDS",
    "EXEC_MODES",
    "PLAN_VARIANTS",
    "REQUEST_VARIANTS",
    "TUNE_CANDIDATES",
    "AutoTuner",
    "Counter",
    "EngineClosed",
    "EngineSaturated",
    "ExecutionPlan",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanCache",
    "PlanKey",
    "Request",
    "TunerKey",
    "pipeline_gain",
    "pipeline_priors",
    "tuner_key",
    "Response",
    "ResponseHandle",
    "ServeEngine",
    "VariantBreaker",
    "build_plan",
    "build_workload",
    "combined_digest",
    "format_report",
    "plan_key",
    "run_baseline",
    "run_serve_bench",
    "trace_app",
]
