#!/usr/bin/env python3
"""Dump the compiler's generated code — CUDA C and virtual PTX.

Shows exactly what the source-to-source compiler produces for one kernel:

* the naive variant (paper Listing 1's checks applied everywhere),
* the block-grained ISP fat kernel (paper Listing 3's goto chain),
* the warp-grained refinement (paper Listing 5),
* and the annotated virtual-PTX of the ISP variant, with each instruction's
  region/role tags (the accounting behind Table I).

Run:  python examples/codegen_dump.py [pattern]
      pattern in {clamp, mirror, repeat, constant}; default clamp
"""

import sys

import numpy as np

from repro import Boundary, Variant
from repro.compiler import compile_kernel, emit_cuda, trace_kernel
from repro.dsl import (
    Accessor,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from repro.ir import print_function


class Blur3(Kernel):
    def __init__(self, it, acc, mask):
        super().__init__(it)
        self.acc = self.add_accessor(acc)
        self.mask = mask

    @property
    def name(self):
        return "blur3"

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def main():
    pattern = Boundary(sys.argv[1]) if len(sys.argv) > 1 else Boundary.CLAMP

    inp = Image(512, 512, "inp")
    out = Image(512, 512, "out")
    mask = Mask(np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], np.float32) / 16)
    kernel = Blur3(IterationSpace(out),
                   Accessor(BoundaryCondition(inp, pattern, 0.0)), mask)
    desc = trace_kernel(kernel)

    bar = "=" * 78
    print(bar)
    print(f"// NAIVE variant — {pattern.value} checks on every access (Listing 1)")
    print(bar)
    print(emit_cuda(desc, Variant.NAIVE, (32, 4)))

    print()
    print(bar)
    print("// ISP variant — block-grained region dispatch (Listing 3)")
    print(bar)
    print(emit_cuda(desc, Variant.ISP, (32, 4)))

    print()
    print(bar)
    print("// warp-grained ISP — 128x1 blocks (Listing 5)")
    print(bar)
    print(emit_cuda(desc, Variant.ISP_WARP, (128, 1)))

    print()
    print(bar)
    print("// virtual PTX of the ISP variant (annotated; first 80 lines)")
    print(bar)
    ck = compile_kernel(desc, variant=Variant.ISP, block=(32, 4))
    ptx = print_function(ck.func, annotate=True).splitlines()
    print("\n".join(ptx[:80]))
    print(f"... ({len(ptx)} lines total, "
          f"{ck.func.static_size()} instructions, "
          f"~{ck.registers.allocated} regs/thread)")


if __name__ == "__main__":
    main()
