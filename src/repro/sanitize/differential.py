"""Cross-variant differential verification against the golden reference.

Every execution path of the repo — naive / ISP / warp-grained ISP on the
SIMT simulator, naive / ISP on the vectorized host executor — must produce
**bit-identical** float32 output for a convolution, because all paths
accumulate taps row-major in float32 exactly like
:func:`repro.filters.reference.correlate`.  This module exploits that: it
runs an adversarial corpus of *tiny images times large windows* (the regime
where every border mapping executes deep excursions, the exact conditions
under which the out-of-bounds Mirror mapping corrupted pixels) through every
variant and compares with ``np.array_equal``.

A mismatch is reported with the first differing pixel; a crash (simulated
memory trap, vectorized bounds assertion) is reported as a violation of the
same case — either way the harness never aborts mid-corpus.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Optional

import numpy as np

from ..compiler.isp import Variant
from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from ..dsl.pipeline import Pipeline
from ..filters.reference import correlate

#: image sizes x window half-extents exercised by default.  Half-extents are
#: taken per-size as ``min(he, 2 * size + 1)`` and deduplicated, so every
#: size is also paired with a window more than twice its own extent — the
#: "small images computed using a large filter window" case the paper calls
#: out, and the one the old Mirror lowering got wrong.
DEFAULT_SIZES = (1, 2, 3, 5, 8)
DEFAULT_HALF_EXTENTS = (1, 2, 3, 7, 99)
DEFAULT_PATTERNS = (
    Boundary.CLAMP,
    Boundary.MIRROR,
    Boundary.REPEAT,
    Boundary.CONSTANT,
)
DEFAULT_SIMT_VARIANTS = (Variant.NAIVE, Variant.ISP, Variant.ISP_WARP)
DEFAULT_VEC_VARIANTS = ("naive", "isp")

#: pipeline corpus: per-stage half-extent chains (clipped per-size exactly
#: like ``DEFAULT_HALF_EXTENTS``), tile shapes for the fused executor — the
#: (1, None) and (2, 5) entries force tiles *smaller than the halo*, where
#: every tile is all-border — and the registered multi-kernel apps.
DEFAULT_CHAIN_EXTENTS = ((1,), (2, 1), (1, 2, 1), (7, 3), (99,))
DEFAULT_TILE_SHAPES = ((None, None), (1, None), (3, 3), (2, 5))
DEFAULT_PIPELINE_APPS = ("sobel", "night")


class _ConvKernel(Kernel):
    def __init__(self, iter_space, acc, mask, kernel_name):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self._name = kernel_name

    @property
    def name(self) -> str:
        return self._name

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def make_conv_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    mask: np.ndarray,
    constant: float = 0.0,
    name: str = "diffconv",
) -> Pipeline:
    """One-kernel convolution pipeline reading ``inp``, writing ``out``."""
    inp = Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    kernel = _ConvKernel(IterationSpace(out), acc, Mask(mask), name)
    return Pipeline(name, [kernel])


def make_chain_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    masks: Iterable[np.ndarray],
    constant: float = 0.0,
    name: str = "diffchain",
) -> Pipeline:
    """Producer->consumer conv chain: ``inp -> t0 -> ... -> out``.

    Each stage convolves the previous stage's output with its own mask under
    the same border pattern, so the whole chain has a closed-form reference
    (fold :func:`correlate` over the masks) that is bit-exact against both
    the staged and the fused executors.
    """
    masks = list(masks)
    if not masks:
        raise ValueError("chain needs at least one mask")
    src = Image(width, height, "inp")
    kernels = []
    for i, mask in enumerate(masks):
        last = i == len(masks) - 1
        dst = Image(width, height, "out" if last else f"t{i}")
        acc = Accessor(BoundaryCondition(src, boundary, constant))
        kernels.append(
            _ConvKernel(IterationSpace(dst), acc, Mask(mask), f"{name}_s{i}")
        )
        src = dst
    return Pipeline(name, kernels)


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One variant disagreeing with (or crashing against) the reference."""

    path: str  # e.g. "simt/isp_warp", "vectorized/naive"
    boundary: str
    width: int
    height: int
    half_extent: int
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path} {self.boundary} {self.width}x{self.height} "
            f"he={self.half_extent}: {self.message}"
        )


@dataclasses.dataclass
class DifferentialReport:
    cases: int = 0
    comparisons: int = 0
    mismatches: list[Mismatch] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatch(es)"
        return (
            f"differential: {self.cases} cases, "
            f"{self.comparisons} variant comparisons: {status}"
        )


def _compare(expected: np.ndarray, actual: np.ndarray) -> Optional[str]:
    if np.array_equal(expected, actual):
        return None
    diff = expected != actual
    # NaN != NaN: only count positions where the values genuinely differ.
    both_nan = np.isnan(expected) & np.isnan(actual)
    diff &= ~both_nan
    if not diff.any():
        return None
    y, x = np.argwhere(diff)[0]
    return (
        f"{int(diff.sum())} pixel(s) differ; first at ({int(x)}, {int(y)}): "
        f"expected {expected[y, x]!r}, got {actual[y, x]!r}"
    )


def run_differential(
    *,
    sizes: Iterable[int] = DEFAULT_SIZES,
    half_extents: Iterable[int] = DEFAULT_HALF_EXTENTS,
    patterns: Iterable[Boundary] = DEFAULT_PATTERNS,
    simt_variants: Iterable[Variant] = DEFAULT_SIMT_VARIANTS,
    vectorized_variants: Iterable[str] = DEFAULT_VEC_VARIANTS,
    block: tuple[int, int] = (32, 4),
    constant: float = 1.25,
    shadow: bool = True,
    seed: int = 20210521,
) -> DifferentialReport:
    """Run every variant over the adversarial corpus vs the reference.

    With ``shadow=True`` the SIMT runs use shadow-OOB memory and the
    vectorized runs use canary-padded images, so a silent out-of-bounds
    access is caught even when it happens to produce the right value.
    """
    from ..runtime.executor import run_pipeline_simt
    from ..runtime.vectorized import run_pipeline_vectorized
    from .shadow import check_pipeline_simt, check_pipeline_vectorized

    rng = np.random.default_rng(seed)
    report = DifferentialReport()
    for size, he_req, boundary in itertools.product(
        sorted(set(sizes)), sorted(set(half_extents)), patterns
    ):
        he = min(he_req, 2 * size + 1)
        if he != he_req and he in half_extents:
            continue  # the clipped extent is its own corpus entry
        w = h = size
        mask = rng.uniform(0.25, 1.0, (2 * he + 1, 2 * he + 1)).astype(np.float32)
        src = rng.uniform(-1.0, 1.0, (h, w)).astype(np.float32)
        expected = correlate(src, mask, boundary, constant)
        pipe = make_conv_pipeline(w, h, boundary, mask, constant)
        report.cases += 1

        for variant in simt_variants:
            path = f"simt/{variant.value}"
            report.comparisons += 1
            try:
                if shadow:
                    sr = check_pipeline_simt(
                        pipe, variant=variant, block=block, inputs={"inp": src}
                    )
                    if not sr.ok:
                        _record(report, path, boundary, w, h, he, sr.violations[0])
                        continue
                    actual = sr.images["out"]
                else:
                    actual = run_pipeline_simt(
                        pipe, variant=variant, block=block, inputs={"inp": src}
                    ).images["out"]
            except Exception as exc:  # noqa: BLE001 — corpus must not abort
                _record(report, path, boundary, w, h, he, f"crash: {exc}")
                continue
            msg = _compare(expected, actual)
            if msg:
                _record(report, path, boundary, w, h, he, msg)

        for vec in vectorized_variants:
            path = f"vectorized/{vec}"
            report.comparisons += 1
            try:
                if shadow:
                    sr = check_pipeline_vectorized(
                        pipe, variant=vec, inputs={"inp": src}
                    )
                    if not sr.ok:
                        _record(report, path, boundary, w, h, he, sr.violations[0])
                        continue
                    actual = sr.images["out"]
                else:
                    actual = run_pipeline_vectorized(
                        pipe, {"inp": src}, variant=vec
                    )["out"]
            except Exception as exc:  # noqa: BLE001
                _record(report, path, boundary, w, h, he, f"crash: {exc}")
                continue
            msg = _compare(expected, actual)
            if msg:
                _record(report, path, boundary, w, h, he, msg)
    return report


def run_pipeline_differential(
    *,
    sizes: Iterable[int] = DEFAULT_SIZES,
    chain_extents: Iterable[tuple[int, ...]] = DEFAULT_CHAIN_EXTENTS,
    patterns: Iterable[Boundary] = DEFAULT_PATTERNS,
    tile_shapes: Iterable[tuple[Optional[int], Optional[int]]] = DEFAULT_TILE_SHAPES,
    apps: Iterable[str] = DEFAULT_PIPELINE_APPS,
    staged_variant: str = "isp",
    constant: float = 1.25,
    seed: int = 20210521,
) -> DifferentialReport:
    """Differential check of *fused* pipeline execution vs staged vs oracle.

    Two corpora, both over tiny images and all border patterns:

    * **conv chains** — every per-stage half-extent chain in
      ``chain_extents`` (clipped per-size like the single-kernel corpus, so
      over-wide windows are always present) is executed staged and fused at
      every tile shape; the oracle is :func:`correlate` folded over the
      stage masks, which every path must match **bit-exactly**;
    * **registered apps** (``sobel``, ``night``) — the fused executor must
      be bit-identical to the staged vectorized executor at every tile
      shape, including tiles smaller than the pipeline's cumulative halo.

    A crash (fusion error, bounds assertion) is recorded as a mismatch for
    the same case; the harness never aborts mid-corpus.
    """
    from ..compiler import cumulative_halos, trace_kernel
    from ..compiler.fusion import fuse_descs
    from ..compiler.fusion_simt import compile_fused_simt
    from ..compiler.isp import CompileError
    from ..filters import PIPELINES
    from ..runtime.fused import run_pipeline_fused
    from ..runtime.vectorized import run_pipeline_vectorized

    tile_shapes = list(tile_shapes)
    rng = np.random.default_rng(seed)
    report = DifferentialReport()

    for size, chain_req, boundary in itertools.product(
        sorted(set(sizes)), sorted(set(chain_extents)), patterns
    ):
        chain = tuple(min(he, 2 * size + 1) for he in chain_req)
        if chain != chain_req and chain in chain_extents:
            continue  # the clipped chain is its own corpus entry
        w = h = size
        he_max = max(chain)
        masks = [
            rng.uniform(0.25, 1.0, (2 * he + 1, 2 * he + 1)).astype(np.float32)
            for he in chain
        ]
        src = rng.uniform(-1.0, 1.0, (h, w)).astype(np.float32)
        expected = src
        for mask in masks:
            expected = correlate(expected, mask, boundary, constant)
        pipe = make_chain_pipeline(w, h, boundary, masks, constant)
        report.cases += 1

        report.comparisons += 1
        try:
            staged = run_pipeline_vectorized(
                pipe, {"inp": src}, variant=staged_variant
            )["out"]
        except Exception as exc:  # noqa: BLE001 — corpus must not abort
            _record(report, "chain/staged", boundary, w, h, he_max,
                    f"crash: {exc}")
            staged = None
        else:
            msg = _compare(expected, staged)
            if msg:
                _record(report, "chain/staged", boundary, w, h, he_max, msg)

        for tr, tc in tile_shapes:
            path = f"chain/fused[t{tr}x{tc}]"
            report.comparisons += 1
            try:
                actual = run_pipeline_fused(
                    pipe, {"inp": src}, tile_rows=tr, tile_cols=tc
                )
            except Exception as exc:  # noqa: BLE001
                _record(report, path, boundary, w, h, he_max, f"crash: {exc}")
                continue
            msg = _compare(expected, actual)
            if msg:
                _record(report, path, boundary, w, h, he_max, msg)

    for app, size, boundary in itertools.product(
        sorted(set(apps)), sorted(set(sizes)), patterns
    ):
        w = h = size
        src = rng.uniform(-1.0, 1.0, (h, w)).astype(np.float32)
        pipe = PIPELINES[app](w, h, boundary, constant)
        halos = cumulative_halos([trace_kernel(k) for k in pipe])
        he_max = max(
            (max(hx, hy) for hx, hy in halos.values()), default=0
        )
        report.cases += 1
        try:
            oracle = run_pipeline_vectorized(
                pipe, {"inp": src}, variant=staged_variant
            )["out"]
        except Exception as exc:  # noqa: BLE001
            _record(report, f"{app}/staged", boundary, w, h, he_max,
                    f"crash: {exc}")
            continue
        for tr, tc in tile_shapes:
            path = f"{app}/fused[t{tr}x{tc}]"
            report.comparisons += 1
            try:
                actual = run_pipeline_fused(
                    pipe, {"inp": src}, tile_rows=tr, tile_cols=tc
                )
            except Exception as exc:  # noqa: BLE001
                _record(report, path, boundary, w, h, he_max, f"crash: {exc}")
                continue
            msg = _compare(oracle, actual)
            if msg:
                _record(report, path, boundary, w, h, he_max, msg)

        # Fused-SIMT arm: the per-block halo-staging megakernel must agree
        # with the staged oracle bit-exactly on both warp widths. Shapes
        # the generator refuses (degenerate geometry, non-exact tiling,
        # single-stage plans) run staged NAIVE on the simulator — already
        # covered above — so a CompileError is the documented fallback,
        # not a finding.
        if w % 2 == 0 and h % 2 == 0 and min(w, h) >= 8:
            for device in _simt_devices():
                path = f"{app}/fused_simt[{device.name}]"
                try:
                    descs = [trace_kernel(k) for k in pipe]
                    plan = fuse_descs(descs, name=app)
                    cfk = compile_fused_simt(plan, block=(2, 2),
                                             device=device)
                except CompileError:
                    continue
                report.comparisons += 1
                try:
                    actual = _run_fused_simt(cfk, src)
                except Exception as exc:  # noqa: BLE001
                    _record(report, path, boundary, w, h, he_max,
                            f"crash: {exc}")
                    continue
                msg = _compare(oracle, actual)
                if msg:
                    _record(report, path, boundary, w, h, he_max, msg)
    return report


def _simt_devices():
    from ..gpu import GTX680, VEGA64

    return (GTX680, VEGA64)


def _run_fused_simt(cfk, src: np.ndarray) -> np.ndarray:
    """Launch one fused megakernel on the simulator and read its output."""
    from ..gpu.launch import launch
    from ..gpu.memory import GlobalMemory
    from ..ir.types import DataType

    plan = cfk.plan
    h, w = src.shape
    mem = GlobalMemory(1 << max(16, ((len(cfk.layout.externals) + 2)
                                     * w * h * 4 + 4096).bit_length()))
    bases: dict[str, int] = {}
    for name in cfk.layout.externals:
        bases[name] = mem.alloc(src.size * 4)
        mem.write_array(bases[name], src.ravel())
    bases[plan.output_name] = mem.alloc(src.size * 4)
    launch(cfk.func, cfk.launch_config, mem, cfk.param_values(bases), None)
    return mem.read_array(bases[plan.output_name], (h, w), DataType.F32)


def _record(
    report: DifferentialReport,
    path: str,
    boundary: Boundary,
    w: int,
    h: int,
    he: int,
    message: str,
) -> None:
    report.mismatches.append(
        Mismatch(
            path=path,
            boundary=boundary.value,
            width=w,
            height=h,
            half_extent=he,
            message=message,
        )
    )
