"""Deterministic fault injection: seeded plans, named points, replayable traces.

The serve stack's degradation paths (simt -> vectorized, isp -> naive,
timeouts, tuner penalties) exist to keep requests alive under failure — but a
path that is only ever taken by accident is a path that silently rots. This
module makes failure a *first-class test input*: a :class:`FaultPlan` names
the points where things go wrong and a seed decides, reproducibly, exactly
which occurrences fire.

Design constraints, in order:

* **Zero overhead disarmed.** Production code guards every injection site
  with ``if faults.active() is not None`` (a module-global ``None`` check);
  no plan installed means no hashing, no locking, no allocation.
* **Determinism independent of thread interleaving.** Whether occurrence
  ``n`` of point ``p`` under key ``k`` fires is a pure function of
  ``(seed, spec, p, k, n)`` — a SHA-256 draw, not shared RNG state — so two
  runs of the same workload produce the same injected-fault trace even
  though a worker pool schedules the hits in a different order. Sites that
  affect per-request outcomes pass a stable ``key`` (the request id), making
  each request's fate independent of its neighbours.
* **Typed failures.** An injected error raises :class:`FaultError`, which the
  hardened engine reports with a machine-readable ``error_kind`` — the chaos
  suite asserts that every request either completes bit-exact or fails with
  a typed error, never hangs and never silently corrupts.

Fault points instrumented across the stack (see docs/faults.md):

==============================  =============================================
point                           site / effect
==============================  =============================================
``gpu.memory.redzone``          :meth:`GlobalMemory._check_lane_addrs` —
                                raises a simulated redzone ``MemoryError_``
``runtime.executor.kernel``     :func:`run_pipeline_simt` per kernel —
                                ``error`` raises, ``latency`` sleeps
``runtime.vectorized.kernel``   :func:`run_kernel_vectorized` per kernel —
                                ``error`` raises, ``latency`` sleeps
``serve.cache.evict``           :meth:`PlanCache.get_or_build` — forces an
                                LRU eviction storm before the lookup
``serve.autotune.load``         :meth:`AutoTuner.load` — corrupts the
                                persisted JSON before parsing
``serve.engine.worker``         top of a worker batch — simulated crash
``serve.engine.execute``        per request execution (keyed by request id)
                                — ``error`` raises, ``latency`` sleeps
``serve.engine.sanitize``       plan build — injected sanitizer rejection
``cluster.gateway.send``        gateway -> shard dispatch — simulated network
                                partition (the router must fail over)
``cluster.worker.exit``         shard worker request handling — abrupt
                                process death (``os._exit``) mid-request
==============================  =============================================

Cluster workers run in separate processes, so a :class:`FaultPlan` crosses
the process boundary serialized: :meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json` round-trip a plan losslessly, and
``repro.cluster`` ships it to each shard on spawn — the same seed then
produces the same injected-fault trace fleet-wide.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import threading
import time
from typing import Iterator, Optional


class FaultError(RuntimeError):
    """A deterministically injected failure (never raised organically)."""

    def __init__(self, point: str, kind: str = "error"):
        self.point = point
        self.kind = kind
        super().__init__(f"injected fault at {point} (kind={kind})")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where, what, and how often.

    ``rate`` is the per-occurrence firing probability; ``at`` pins explicit
    occurrence indices instead (0-based, per ``(point, key)`` stream) and
    overrides ``rate``. ``max_fires`` caps total firings of this spec across
    the whole run — the knob that turns a persistent fault into a transient
    one a retry can outlive. ``match`` filters on the context a site passes
    to :meth:`FaultInjector.fire` (e.g. ``{"variant": "isp"}`` faults only
    ISP executions, which is how the chaos suite drives the circuit breaker
    without also breaking the naive fallback).
    """

    point: str
    kind: str = "error"  # error | latency | crash | evict | corrupt | reject
    rate: float = 1.0
    at: Optional[tuple[int, ...]] = None
    max_fires: Optional[int] = None
    match: Optional[tuple[tuple[str, object], ...]] = None
    payload: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, point: str, kind: str = "error", *, rate: float = 1.0,
             at: Optional[tuple[int, ...]] = None,
             max_fires: Optional[int] = None,
             match: Optional[dict] = None, **payload) -> "FaultSpec":
        """Ergonomic constructor (dicts become hashable tuples)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return cls(
            point=point, kind=kind, rate=rate,
            at=tuple(at) if at is not None else None,
            max_fires=max_fires,
            match=tuple(sorted(match.items())) if match else None,
            payload=tuple(sorted(payload.items())),
        )

    def payload_dict(self) -> dict:
        return dict(self.payload)

    def to_json(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "rate": self.rate,
            "at": list(self.at) if self.at is not None else None,
            "max_fires": self.max_fires,
            "match": dict(self.match) if self.match is not None else None,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        return cls.make(
            data["point"],
            data.get("kind", "error"),
            rate=float(data.get("rate", 1.0)),
            at=data.get("at"),
            max_fires=data.get("max_fires"),
            match=data.get("match"),
            **data.get("payload", {}),
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus the specs it arms. Same plan, same workload keys =>
    same injected-fault trace, run after run."""

    seed: int
    specs: tuple[FaultSpec, ...]

    @classmethod
    def make(cls, seed: int, specs: list[FaultSpec]) -> "FaultPlan":
        return cls(seed=int(seed), specs=tuple(specs))

    def to_json(self) -> dict:
        """Lossless wire form, for shipping a plan to shard subprocesses."""
        return {"seed": self.seed,
                "specs": [s.to_json() for s in self.specs]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls.make(int(data["seed"]),
                        [FaultSpec.from_json(s) for s in data.get("specs", [])])


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the trace."""

    point: str
    key: str
    occurrence: int
    kind: str


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """What a site should do about a fired fault."""

    kind: str
    payload: dict
    event: FaultEvent

    def sleep(self, default_seconds: float = 0.002) -> None:
        """Apply a ``latency`` action (bounded so chaos runs stay fast)."""
        time.sleep(min(float(self.payload.get("seconds", default_seconds)), 0.25))


def _draw(seed: int, spec_index: int, point: str, key: str, occ: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}|{spec_index}|{point}|{key}|{occ}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at runtime and records the trace.

    Thread-safe: occurrence counters and the trace live under one lock, but
    the fire/no-fire *decision* never depends on cross-thread state — only on
    the per-``(point, key)`` occurrence index, which is stable for keyed
    sites regardless of worker scheduling.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._by_point: dict[str, list[tuple[int, FaultSpec]]] = {}
        for i, spec in enumerate(plan.specs):
            self._by_point.setdefault(spec.point, []).append((i, spec))
        self._lock = threading.Lock()
        self._occurrences: dict[tuple[str, str], int] = {}
        self._spec_fires: dict[int, int] = {}
        self._events: list[FaultEvent] = []

    # ------------------------------------------------------------------ fire

    def fire(self, point: str, key: str = "", **context) -> Optional[FaultAction]:
        """Evaluate one occurrence of ``point`` under ``key``.

        Returns the :class:`FaultAction` of the first matching spec that
        fires, or ``None``. Every call advances the ``(point, key)``
        occurrence counter exactly once, fired or not, so occurrence indices
        mean the same thing in every run of the same workload.
        """
        specs = self._by_point.get(point)
        if not specs:
            return None
        with self._lock:
            occ = self._occurrences.get((point, key), 0)
            self._occurrences[(point, key)] = occ + 1
            for index, spec in specs:
                if spec.match is not None and any(
                    context.get(k) != v for k, v in spec.match
                ):
                    continue
                fires = self._spec_fires.get(index, 0)
                if spec.max_fires is not None and fires >= spec.max_fires:
                    continue
                if spec.at is not None:
                    hit = occ in spec.at
                else:
                    hit = _draw(self.plan.seed, index, point, key, occ) < spec.rate
                if not hit:
                    continue
                self._spec_fires[index] = fires + 1
                event = FaultEvent(point=point, key=key, occurrence=occ,
                                   kind=spec.kind)
                self._events.append(event)
                return FaultAction(kind=spec.kind, payload=spec.payload_dict(),
                                   event=event)
        return None

    # ----------------------------------------------------------- inspection

    def trace(self) -> list[FaultEvent]:
        """Fired events in firing order (scheduling-dependent across threads)."""
        with self._lock:
            return list(self._events)

    def trace_signature(self) -> tuple[FaultEvent, ...]:
        """Canonical, scheduling-independent view of the trace: the fired
        events sorted by (point, key, occurrence). Two runs of the same
        workload under the same plan produce equal signatures."""
        with self._lock:
            return tuple(sorted(
                self._events,
                key=lambda e: (e.point, e.key, e.occurrence, e.kind),
            ))

    def counts(self) -> dict[str, int]:
        """Fired events per point (for metrics/assertions)."""
        out: dict[str, int] = {}
        with self._lock:
            for e in self._events:
                out[e.point] = out.get(e.point, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Ambient installation (the disarmed fast path is a module-global None check)
# ---------------------------------------------------------------------------

_current: Optional[FaultInjector] = None
_install_lock = threading.Lock()


def active() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` when disarmed."""
    return _current


def fire(point: str, key: str = "", **context) -> Optional[FaultAction]:
    """Fire helper for sites that already know an injector is active."""
    inj = _current
    if inj is None:
        return None
    return inj.fire(point, key, **context)


@contextlib.contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` process-wide for the duration of the block.

    Arming is exclusive — nested arming raises, because two plans sharing
    one set of occurrence counters would make neither reproducible.
    """
    global _current
    injector = FaultInjector(plan)
    with _install_lock:
        if _current is not None:
            raise RuntimeError("a FaultPlan is already armed")
        _current = injector
    try:
        yield injector
    finally:
        with _install_lock:
            _current = None
