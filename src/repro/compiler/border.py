"""Code generation for the four border handling patterns (paper Listing 1).

For one pixel access, :func:`emit_border_checks` maps the (possibly
out-of-bounds) coordinates to safe in-bounds coordinates, emitting only the
checks the enclosing region requires — the per-region specialization at the
heart of ISP. The emitted instruction shapes follow Listing 1:

* **Clamp**: ``min``/``max`` — branchless, 1 instruction per checked side.
* **Mirror**: single compare + reflect + select when only one side needs a
  check; when both sides are checked the closed-form *total* triangular
  reflection (period ``2*size``) is emitted instead, so coordinates
  arbitrarily far outside the image still map in-bounds.
* **Repeat**: a ``while`` loop per checked side (the paper notes this is
  "required ... when small images are computed using a large filter window"),
  making Repeat the costliest pattern — which is why it benefits most from
  ISP in the paper's Figure 6.
* **Constant**: validity predicate per checked side; the coordinate is also
  clamped so the load address stays in bounds, and the loaded value is
  replaced by the user constant where invalid. This is the "initialize with
  the constant, update only in bounds" scheme of Listing 1, expressed with a
  predicated select instead of a branch (what NVCC emits for such guards).

All instructions are tagged ``role="check"`` so the model calibration can
count ``n_check`` exactly (paper Eq. 3).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..dsl.boundary import Boundary
from ..ir.builder import IRBuilder
from ..ir.instructions import CmpOp, Register
from ..ir.types import DataType


@dataclasses.dataclass
class BorderedCoord:
    """Result of border mapping one coordinate axis."""

    coord: Register
    #: CONSTANT pattern only: predicate that the original coord was in bounds
    #: on this axis (None for other patterns / unchecked axes).
    valid: Optional[Register] = None


def emit_axis_checks(
    b: IRBuilder,
    coord: Register,
    size: Register,
    boundary: Boundary,
    *,
    check_low: bool,
    check_high: bool,
    consts: Optional[dict] = None,
) -> BorderedCoord:
    """Map one axis coordinate according to ``boundary``.

    ``check_low``/``check_high`` select which side(s) this region must guard;
    the Body region passes both as False and gets the coordinate back
    untouched — zero instructions, the whole point of ISP.

    ``consts`` is an optional cache for size-derived loop invariants
    (``size-1``, ``2*size-1``): NVCC's CSE computes them once per kernel
    rather than once per tap (the paper notes "many of them share common
    sub-expressions that can be optimized by the NVCC compiler"), and the
    lowering threads one cache per region body to match.
    """
    if not (check_low or check_high):
        return BorderedCoord(coord)
    if boundary is Boundary.UNDEFINED:
        return BorderedCoord(coord)
    if consts is None:
        consts = {}

    def cached(key: str, emit) -> Register:
        full_key = (size.name, key)
        reg = consts.get(full_key)
        if reg is None:
            reg = emit()
            consts[full_key] = reg
        return reg

    with b.role("check"):
        if boundary is Boundary.CLAMP:
            c = coord
            if check_low:
                c = b.max(c, b.imm(0, DataType.S32))
            if check_high:
                upper = cached("size_m1", lambda: b.sub(size, 1))
                c = b.min(c, upper)
            return BorderedCoord(c)

        if boundary is Boundary.MIRROR:
            c = coord
            if check_low and check_high:
                # Total triangular reflection with period 2*size: correct at
                # any depth past the edge, which matters whenever the window
                # half-extent exceeds the image size (e.g. a 13x13 bilateral
                # window on a 3x3 image).  A single reflection per side is
                # NOT total: c=-7, size=3 reflects to 6, then to -1 — still
                # out of bounds.
                #   r = c mod 2*size   (floored: rem then +period if negative)
                #   c' = r < size ? r : 2*size - 1 - r
                period = cached("twice", lambda: b.add(size, size))
                r = b.rem(c, period)
                p = b.setp(CmpOp.LT, r, 0)
                wrapped = b.add(r, period)
                r = b.selp(p, wrapped, r)
                q = b.setp(CmpOp.GE, r, size)
                upper = cached("twice_m1", lambda: b.sub(b.add(size, size), 1))
                refl = b.sub(upper, r)
                c = b.selp(q, refl, r)
                return BorderedCoord(c)
            if check_low:
                # if (c < 0) c = -c - 1;  — single reflection is exact here
                # because a region that only checks the low side guarantees
                # c >= -size (the sanitizer proves this per geometry).
                p = b.setp(CmpOp.LT, c, 0)
                refl = b.sub(b.imm(-1, DataType.S32), c)
                c = b.selp(p, refl, c)
            if check_high:
                # if (c >= size) c = 2*size - c - 1;
                p = b.setp(CmpOp.GE, c, size)
                upper = cached(
                    "twice_m1", lambda: b.sub(b.add(size, size), 1)
                )
                refl = b.sub(upper, c)
                c = b.selp(p, refl, c)
            return BorderedCoord(c)

        if boundary is Boundary.REPEAT:
            # while-loops exactly as Listing 1; each iterates at most once for
            # windows smaller than the image, but the loop structure (and its
            # per-iteration compare+branch) is what the naive variant pays on
            # every access.
            c = b.fresh_reg(DataType.S32, "rep")
            b.mov_to(c, coord)
            if check_low:
                _emit_repeat_loop(b, c, size, low=True)
            if check_high:
                _emit_repeat_loop(b, c, size, low=False)
            return BorderedCoord(c)

        if boundary is Boundary.CONSTANT:
            c = coord
            valid: Optional[Register] = None
            if check_low:
                p = b.setp(CmpOp.GE, c, 0)
                valid = p
                c = b.max(c, b.imm(0, DataType.S32))
            if check_high:
                p = b.setp(CmpOp.LT, c, size)
                valid = p if valid is None else _and_pred(b, valid, p)
                upper = cached("size_m1", lambda: b.sub(size, 1))
                c = b.min(c, upper)
            return BorderedCoord(c, valid)

    raise AssertionError(f"unhandled boundary {boundary}")


def _emit_repeat_loop(b: IRBuilder, c: Register, size: Register, *, low: bool) -> None:
    """``while (c < 0) c += size`` or ``while (c >= size) c -= size``."""
    side = "lo" if low else "hi"
    head = b.fresh_label(f"rep_{side}_head")
    body = b.fresh_label(f"rep_{side}_body")
    done = b.fresh_label(f"rep_{side}_done")
    b.br(head)
    b.new_block(head)
    if low:
        p = b.setp(CmpOp.LT, c, 0)
    else:
        p = b.setp(CmpOp.GE, c, size)
    b.cbr(p, body, done)
    b.new_block(body)
    if low:
        b.mov_to(c, b.add(c, size))
    else:
        b.mov_to(c, b.sub(c, size))
    b.br(head)
    b.new_block(done)


def _and_pred(b: IRBuilder, p1: Register, p2: Register) -> Register:
    return b.and_(p1, p2, DataType.PRED)


def combine_valid(
    b: IRBuilder, vx: Optional[Register], vy: Optional[Register]
) -> Optional[Register]:
    """AND the per-axis validity predicates of the CONSTANT pattern."""
    if vx is None:
        return vy
    if vy is None:
        return vx
    with b.role("check"):
        return _and_pred(b, vx, vy)


def instructions_per_side(boundary: Boundary) -> int:
    """Static estimate of ``n_check`` — instructions to check *one* border
    side for one access (paper Section IV-A.2). Used as a fallback by the
    analytic model when no compiled IR is available for calibration; the
    primary path measures these counts from real IR instead."""
    return {
        Boundary.CLAMP: 1,       # min or max
        Boundary.MIRROR: 4,      # rem/setp/selp halves of the total mapping,
                                 # amortized over the two sides it handles
        Boundary.REPEAT: 4,      # loop head compare + branch + add/sub + back-branch
        Boundary.CONSTANT: 2,    # setp + clamp (plus one selp per access, amortized)
        Boundary.UNDEFINED: 0,
    }[boundary]
