"""Property tests for fused pipeline execution (overlapped tiling).

Two contracts locked down over *random stage chains*:

* **halo algebra** — for a linear producer->consumer chain the cumulative
  halo computed by :func:`repro.compiler.cumulative_halos` is exactly the
  suffix sum of the per-stage read extents (docstring of that function);
* **bit-exactness** — the fused executor, which recomputes halos per
  overlapped tile and never materializes a full intermediate, returns the
  same float32 bits as the staged executor for every border pattern, every
  image size down to 1x1, and every tile shape including tiles smaller
  than the cumulative halo.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import cumulative_halos, fuse_descs, trace_kernel
from repro.dsl import Boundary
from repro.runtime import run_pipeline_fused, run_pipeline_vectorized
from repro.sanitize import make_chain_pipeline

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


def _masks(extents, seed):
    rng = np.random.default_rng(seed)
    return [
        rng.uniform(0.25, 1.0, (2 * e + 1, 2 * e + 1)).astype(np.float32)
        for e in extents
    ]


@st.composite
def chain_case(draw):
    extents = tuple(draw(st.lists(st.integers(0, 3), min_size=1, max_size=4)))
    width = draw(st.integers(1, 8))
    height = draw(st.integers(1, 8))
    pattern = draw(st.sampled_from(PATTERNS))
    # tile shapes deliberately include 1 (every tile smaller than any halo)
    # and None (single whole-image tile).
    tile_rows = draw(st.sampled_from([None, 1, 2, 5]))
    tile_cols = draw(st.sampled_from([None, 1, 3]))
    constant = draw(st.floats(min_value=-1.0, max_value=1.0, width=32))
    seed = draw(st.integers(0, 2**31 - 1))
    return extents, width, height, pattern, tile_rows, tile_cols, constant, seed


class TestHaloAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(
        extents=st.lists(st.integers(0, 4), min_size=1, max_size=5),
        size=st.integers(1, 6),
    )
    def test_chain_halo_is_suffix_sum_of_stage_extents(self, extents, size):
        masks = _masks(extents, seed=9)
        pipe = make_chain_pipeline(size, size, Boundary.CLAMP, masks)
        halos = cumulative_halos([trace_kernel(k) for k in pipe])

        k = len(extents)
        # image written by stage i: suffix sum of downstream extents
        for i in range(k):
            name = "out" if i == k - 1 else f"t{i}"
            want = sum(extents[i + 1:])
            assert halos[name] == (want, want), (name, halos)
        # the external input carries the full chain's halo
        total = sum(extents)
        assert halos["inp"] == (total, total)

    @settings(max_examples=30, deadline=None)
    @given(
        extents=st.lists(st.integers(0, 3), min_size=1, max_size=4),
        size=st.integers(2, 8),
    )
    def test_whole_image_tile_has_unit_amplification(self, extents, size):
        pipe = make_chain_pipeline(size, size, Boundary.MIRROR,
                                   _masks(extents, seed=3))
        plan = fuse_descs([trace_kernel(k) for k in pipe])
        amp = plan.amplification()
        # One tile covering the image: no recompute anywhere.
        assert amp["out"] == 1.0
        for name, a in amp.items():
            assert a == 1.0, (name, amp)

    @settings(max_examples=30, deadline=None)
    @given(
        extents=st.lists(st.integers(1, 3), min_size=2, max_size=4),
        size=st.integers(4, 8),
        tile_rows=st.integers(1, 3),
    )
    def test_small_tiles_amplify_only_producers(self, extents, size, tile_rows):
        pipe = make_chain_pipeline(size, size, Boundary.CLAMP,
                                   _masks(extents, seed=4))
        plan = fuse_descs([trace_kernel(k) for k in pipe],
                          tile_rows=tile_rows)
        amp = plan.amplification()
        # The final stage writes each output pixel exactly once; producers
        # are recomputed in every consumer tile's halo.
        assert amp["out"] == 1.0
        assert all(a >= 1.0 for a in amp.values()), amp


class TestFusedBitExact:
    @settings(max_examples=60, deadline=None)
    @given(case=chain_case())
    def test_fused_matches_staged_chain(self, case):
        (extents, width, height, pattern, tile_rows, tile_cols,
         constant, seed) = case
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1.0, 1.0, (height, width)).astype(np.float32)
        pipe = make_chain_pipeline(width, height, pattern,
                                   _masks(extents, seed), constant)
        staged = run_pipeline_vectorized(pipe, {"inp": src}, variant="isp")["out"]
        fused = run_pipeline_fused(pipe, {"inp": src},
                                   tile_rows=tile_rows, tile_cols=tile_cols)
        assert np.array_equal(staged, fused), (pattern, tile_rows, tile_cols)

    @settings(max_examples=16, deadline=None)
    @given(
        pattern=st.sampled_from(PATTERNS),
        tile_rows=st.sampled_from([None, 1]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_one_by_one_image(self, pattern, tile_rows, seed):
        """1x1 image under a wide two-stage chain: all-border tiles."""
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1.0, 1.0, (1, 1)).astype(np.float32)
        pipe = make_chain_pipeline(1, 1, pattern, _masks((2, 1), seed), 0.5)
        staged = run_pipeline_vectorized(pipe, {"inp": src}, variant="isp")["out"]
        fused = run_pipeline_fused(pipe, {"inp": src}, tile_rows=tile_rows)
        assert np.array_equal(staged, fused), pattern

    @settings(max_examples=20, deadline=None)
    @given(
        pattern=st.sampled_from(PATTERNS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_tiles_smaller_than_halo(self, pattern, seed):
        """Cumulative halo (3+3=6) dwarfs the 2x2 tiles: every tile is
        entirely border-handled, and the bits still match staged."""
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1.0, 1.0, (6, 6)).astype(np.float32)
        pipe = make_chain_pipeline(6, 6, pattern, _masks((3, 3), seed), -0.25)
        staged = run_pipeline_vectorized(pipe, {"inp": src}, variant="isp")["out"]
        fused = run_pipeline_fused(pipe, {"inp": src}, tile_rows=2, tile_cols=2)
        assert np.array_equal(staged, fused), pattern
