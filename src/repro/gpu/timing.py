"""Cycle/time estimation for kernel launches — the simulator's stopwatch.

The paper measures kernel time with NVProf on real GPUs; we estimate it from
first principles using quantities the simulator produces exactly:

* **work**: cost-weighted issue cycles per block, per geometric block class
  (from representative-block profiling), scaled by the exact number of blocks
  in each class;
* **parallelism**: theoretical occupancy (registers/block-size limited) gives
  the number of concurrently resident blocks and warps per SM;
* **latency hiding**: a kernel whose memory-issue fraction is high needs more
  resident warps to hide latency; below the requirement, time inflates by the
  deficit ratio — this is the mechanism behind the paper's cost model, where
  an occupancy drop from ``O_naive`` to ``O_ISP`` inflates time by
  ``O_naive/O_ISP`` (Section IV-B.2);
* **wave quantization**: blocks are dispatched in waves of
  ``active_blocks x SMs``; the final partial wave wastes capacity, which
  penalizes small grids (small images) — the tail effect;
* **launch overhead**: a fixed per-launch cost, relatively larger for small
  images and multi-kernel pipelines (Sobel, Night).

All absolute numbers are pseudo-time; every reported result is a speedup
ratio, as in the paper.
"""

from __future__ import annotations

import dataclasses
import math

from .device import DeviceSpec
from .occupancy import OccupancyResult, compute_occupancy

#: Fixed host-side cost per kernel launch, in microseconds (driver + PCIe
#: doorbell). Typical measured values on the paper's era of hardware are
#: 3-10 us; we use a middle value.
LAUNCH_OVERHEAD_US = 5.0


@dataclasses.dataclass(frozen=True)
class TimingEstimate:
    """Predicted execution time of one kernel launch."""

    cycles: float
    time_us: float
    occupancy: OccupancyResult
    stall_factor: float
    waves: float
    waves_quantized: int
    total_issue_cycles: float

    @property
    def time_ms(self) -> float:
        return self.time_us / 1000.0


def estimate_time(
    device: DeviceSpec,
    *,
    total_blocks: int,
    block_threads: int,
    regs_per_thread: int,
    class_block_cycles: dict[str, float],
    class_block_counts: dict[str, int],
    mem_issue_fraction: float,
    spill_factor: float = 1.0,
    shared_bytes: int = 0,
) -> TimingEstimate:
    """Estimate launch time on ``device``.

    Parameters
    ----------
    class_block_cycles:
        Issue cycles of one block of each geometric class (profiled).
    class_block_counts:
        Number of blocks per class; must sum to ``total_blocks``.
    mem_issue_fraction:
        Fraction of issue cycles that are memory operations (0..1).
    spill_factor:
        Multiplier >= 1 applied to issue cycles when the register estimator
        had to spill (extra local-memory traffic).
    """
    counted = sum(class_block_counts.values())
    if counted != total_blocks:
        raise ValueError(
            f"class block counts sum to {counted}, expected {total_blocks}"
        )
    missing = set(class_block_counts) - set(class_block_cycles)
    nonzero_missing = {c for c in missing if class_block_counts[c] > 0}
    if nonzero_missing:
        raise ValueError(f"no profiled cycles for block classes {sorted(nonzero_missing)}")

    total_work = sum(
        class_block_cycles[c] * n for c, n in class_block_counts.items() if n > 0
    )
    total_work *= spill_factor

    occ = compute_occupancy(device, block_threads, regs_per_thread,
                            shared_bytes=shared_bytes)

    needed_warps = (
        device.latency_hiding_warps + device.mem_latency_warps * mem_issue_fraction
    )
    resident_warps = max(1, occ.active_warps_per_sm)
    stall = max(1.0, needed_warps / resident_warps)

    blocks_concurrent = max(1, occ.active_blocks_per_sm * device.sm_count)
    waves = total_blocks / blocks_concurrent
    waves_quantized = math.ceil(waves)
    tail_factor = waves_quantized / waves if waves > 0 else 1.0
    # Tail waste only applies to the under-filled final wave; for very small
    # grids (waves < 1) the device is simply under-utilized and the critical
    # path is a single block's execution.
    if waves < 1.0:
        avg_block = total_work / max(1, total_blocks)
        per_sm_issue = avg_block / device.issue_width
        cycles = per_sm_issue * stall * max(1.0, total_blocks / blocks_concurrent)
        # At minimum, the whole grid's work spread over the device:
        cycles = max(cycles, total_work / (device.sm_count * device.issue_width) * stall)
    else:
        per_sm_work = total_work / device.sm_count
        cycles = per_sm_work / device.issue_width * stall * tail_factor

    time_us = cycles / device.clock_mhz + LAUNCH_OVERHEAD_US
    return TimingEstimate(
        cycles=cycles,
        time_us=time_us,
        occupancy=occ,
        stall_factor=stall,
        waves=waves,
        waves_quantized=waves_quantized,
        total_issue_cycles=total_work,
    )
