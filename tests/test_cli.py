"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX680" in out and "RTX2080" in out

    def test_run_verifies_against_reference(self, capsys):
        rc = main(["run", "--app", "gaussian", "--pattern", "mirror",
                   "--variant", "isp", "--size", "32", "--block", "16x4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max|err|" in out

    def test_run_texture_variant(self, capsys):
        rc = main(["run", "--app", "gaussian", "--pattern", "clamp",
                   "--variant", "texture", "--size", "32", "--block", "16x4"])
        assert rc == 0

    def test_regions(self, capsys):
        assert main(["regions", "--app", "bilateral", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "BH_L=" in out
        assert "body fraction" in out

    def test_regions_degenerate(self, capsys):
        assert main(["regions", "--app", "bilateral", "--size", "16",
                     "--block", "32x4"]) == 0
        assert "DEGENERATE" in capsys.readouterr().out

    def test_predict(self, capsys):
        assert main(["predict", "--app", "gaussian", "--pattern", "repeat",
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "G=" in out and "->" in out

    def test_codegen(self, capsys):
        assert main(["codegen", "--app", "gaussian", "--pattern", "clamp",
                     "--variant", "isp", "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "goto Body;" in out

    def test_measure_small(self, capsys):
        assert main(["measure", "--app", "gaussian", "--pattern", "repeat",
                     "--size", "256"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "isp+m choices" in out

    def test_invalid_block_rejected(self):
        with pytest.raises(SystemExit):
            main(["regions", "--app", "gaussian", "--block", "banana"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "unsharp"])

    def test_run_failed_verification_returns_nonzero(self, capsys):
        # An impossible tolerance forces the verification branch to fail;
        # the CLI must propagate that as a non-zero exit code.
        rc = main(["run", "--app", "gaussian", "--pattern", "clamp",
                   "--variant", "naive", "--size", "32", "--block", "16x4",
                   "--tolerance", "0"])
        assert rc == 1
        assert "verification FAILED" in capsys.readouterr().err

    def test_measure_size_list(self, capsys):
        assert main(["measure", "--app", "gaussian", "--pattern", "repeat",
                     "--size", "128,256"]) == 0
        out = capsys.readouterr().out
        assert "128x128" in out and "256x256" in out
        assert out.count("isp+m choices") == 2

    def test_predict_size_list(self, capsys):
        assert main(["predict", "--app", "gaussian", "--pattern", "clamp",
                     "--size", "256,512"]) == 0
        out = capsys.readouterr().out
        assert "256x256" in out and "512x512" in out

    def test_invalid_size_list_rejected(self):
        for bad in ("banana", "512,", "0", "128,-4"):
            with pytest.raises(SystemExit):
                main(["predict", "--app", "gaussian", "--size", bad])


class TestServeBenchCli:
    def test_serve_bench_reports_cache_and_throughput(self, capsys):
        rc = main(["serve-bench", "--requests", "12", "--size", "48",
                   "--workers", "2", "--variant", "isp",
                   "--baseline-requests", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan-cache hit rate" in out
        assert "speedup over cold baseline" in out
        assert "errors" in out
