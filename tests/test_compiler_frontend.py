"""Front-end (kernel tracing) tests."""

import numpy as np
import pytest

from repro.compiler import FrontendError, trace_kernel
from repro.dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from tests.conftest import ConvKernel, make_conv_kernel


class TestTracing:
    def test_basic_convolution(self):
        # coefficient array shape is (rows, cols) = (5, 3): 3 wide, 5 tall
        k = make_conv_kernel(32, 24, Boundary.CLAMP, np.ones((5, 3), np.float32))
        desc = trace_kernel(k)
        assert desc.width == 32 and desc.height == 24
        assert desc.extent == (1, 2)
        assert desc.window_size == (3, 5)
        assert not desc.is_point_operator
        assert desc.needs_border_handling
        assert desc.output_name == "out"

    def test_point_operator_detection(self):
        class PointK(Kernel):
            def __init__(self, it, acc):
                super().__init__(it)
                self.acc = self.add_accessor(acc)

            def kernel(self):
                return self.acc(0, 0) * 2.0

        inp, out = Image(8, 8, "inp"), Image(8, 8, "out")
        k = PointK(IterationSpace(out), Accessor(inp))
        desc = trace_kernel(k)
        assert desc.is_point_operator
        assert not desc.needs_border_handling

    def test_extent_from_max_access(self):
        coeffs = np.zeros((5, 5), np.float32)
        coeffs[0, 2] = 1.0  # only (0, -2)
        k = make_conv_kernel(32, 32, Boundary.CLAMP, coeffs)
        desc = trace_kernel(k)
        assert desc.extent == (0, 2)

    def test_unregistered_accessor_rejected(self):
        class BadK(Kernel):
            def __init__(self, it, acc):
                super().__init__(it)
                self.acc = acc  # forgot add_accessor

            def kernel(self):
                return self.acc(0, 0)

        inp, out = Image(8, 8, "inp"), Image(8, 8, "out")
        k = BadK(IterationSpace(out),
                 Accessor(BoundaryCondition(inp, Boundary.CLAMP)))
        with pytest.raises(FrontendError, match="not registered"):
            trace_kernel(k)

    def test_size_mismatch_rejected(self):
        inp, out = Image(8, 8, "inp"), Image(16, 16, "out")
        acc = Accessor(BoundaryCondition(inp, Boundary.CLAMP))
        k = ConvKernel(IterationSpace(out), acc, Mask(np.ones((3, 3), np.float32)))
        with pytest.raises(FrontendError, match="does not match"):
            trace_kernel(k)

    def test_undefined_boundary_with_offset_rejected(self):
        inp, out = Image(8, 8, "inp"), Image(8, 8, "out")
        k = ConvKernel(IterationSpace(out), Accessor(inp),
                       Mask(np.ones((3, 3), np.float32)))
        with pytest.raises(FrontendError, match="without a boundary"):
            trace_kernel(k)

    def test_no_reads_rejected(self):
        class NothingK(Kernel):
            def kernel(self):
                return 1.0

        k = NothingK(IterationSpace(Image(8, 8, "out")))
        with pytest.raises(FrontendError, match="reads no input"):
            trace_kernel(k)

    def test_none_return_rejected(self):
        class NoneK(Kernel):
            def kernel(self):
                return None

        k = NoneK(IterationSpace(Image(8, 8, "out")))
        with pytest.raises(FrontendError, match="returned None"):
            trace_kernel(k)

    def test_accesses_grouped_per_accessor(self):
        inp, out = Image(8, 8, "inp"), Image(8, 8, "out")
        acc = Accessor(BoundaryCondition(inp, Boundary.MIRROR))
        k = ConvKernel(IterationSpace(out), acc, Mask(np.ones((3, 3), np.float32)))
        desc = trace_kernel(k)
        assert len(desc.accesses) == 1
        assert len(desc.accesses[id(acc)]) == 9
