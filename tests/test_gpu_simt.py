"""SIMT executor tests: ALU semantics, divergence, loops, exit masking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import GlobalMemory, LaunchConfig, Profiler, launch
from repro.gpu.simt import WARP_SIZE, SimtError, _apply, _trunc_div, _trunc_rem
from repro.ir import (
    CmpOp,
    DataType,
    Immediate,
    Instruction,
    IRBuilder,
    Opcode,
    Param,
    Register,
    SpecialReg,
)

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestIntegerSemantics:
    """PTX integer semantics: wraparound and C-style truncating division."""

    @given(a=i32, b=i32)
    def test_trunc_div_matches_c(self, a, b):
        av = np.array([a], dtype=np.int64)
        bv = np.array([b], dtype=np.int64)
        q = _trunc_div(av, bv)[0]
        if b == 0:
            assert q == 0
        else:
            assert q == int(a / b) if abs(a / b) < 2**62 else True

    @given(a=i32, b=i32.filter(lambda x: x != 0))
    def test_div_rem_identity(self, a, b):
        av = np.array([a], dtype=np.int64)
        bv = np.array([b], dtype=np.int64)
        q = _trunc_div(av, bv)[0]
        r = _trunc_rem(av, bv)[0]
        assert q * b + r == a
        assert abs(r) < abs(b)
        # C remainder takes the dividend's sign.
        if r != 0:
            assert (r < 0) == (a < 0)

    def test_add_wraps_int32(self):
        instr = Instruction(
            Opcode.ADD, DataType.S32, Register("d", DataType.S32),
            [Register("a", DataType.S32), Register("b", DataType.S32)],
        )
        a = np.full(WARP_SIZE, 2**31 - 1, dtype=np.int32)
        b = np.ones(WARP_SIZE, dtype=np.int32)
        out = _apply(instr, [a, b], np.ones(WARP_SIZE, bool))
        assert out[0] == -(2**31)


class TestFloatSemantics:
    @given(st.floats(min_value=-50.0, max_value=50.0, width=32))
    def test_ex2_matches_numpy(self, x):
        instr = Instruction(
            Opcode.EX2, DataType.F32, Register("d", DataType.F32),
            [Register("a", DataType.F32)],
        )
        a = np.full(WARP_SIZE, x, dtype=np.float32)
        out = _apply(instr, [a], np.ones(WARP_SIZE, bool))
        assert np.allclose(out, np.exp2(np.float32(x)), rtol=1e-6)

    def test_cvt_f32_to_s32_truncates(self):
        instr = Instruction(
            Opcode.CVT, DataType.S32, Register("d", DataType.S32),
            [Register("a", DataType.F32)], src_dtype=DataType.F32,
        )
        a = np.array([1.9, -1.9, 0.5, -0.5] * 8, dtype=np.float32)
        out = _apply(instr, [a], np.ones(WARP_SIZE, bool))
        assert list(out[:4]) == [1, -1, 0, 0]

    def test_selp(self):
        instr = Instruction(
            Opcode.SELP, DataType.F32, Register("d", DataType.F32),
            [Register("a", DataType.F32), Register("b", DataType.F32),
             Register("p", DataType.PRED)],
        )
        a = np.full(WARP_SIZE, 1.0, np.float32)
        b = np.full(WARP_SIZE, 2.0, np.float32)
        p = np.zeros(WARP_SIZE, bool)
        p[::2] = True
        out = _apply(instr, [a, b, p], np.ones(WARP_SIZE, bool))
        assert np.all(out[::2] == 1.0) and np.all(out[1::2] == 2.0)


def _run_kernel(builder, n_threads=32, params=None, mem_bytes=1 << 14):
    func = builder.finish()
    mem = GlobalMemory(mem_bytes)
    out = mem.alloc(n_threads * 4)
    prof = Profiler()
    all_params = {"out_ptr": out}
    all_params.update(params or {})
    launch(func, LaunchConfig(grid=(1, 1), block=(n_threads, 1)), mem,
           all_params, prof)
    return mem, out, prof


def _out_param():
    return [Param("out_ptr", DataType.U32, is_pointer=True)]


def _store(b, out, tid, value, dtype=DataType.S32):
    addr = b.add(out, b.cvt(b.shl(tid, 2), DataType.U32), DataType.U32)
    b.st(addr, value, dtype)


class TestDivergence:
    def test_nested_divergence(self):
        """if (tid < 16) { if (tid < 8) v=1 else v=2 } else v=3."""
        b = IRBuilder("nested", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        v = b.fresh_reg(DataType.S32, "v")
        b.mov_to(v, 0)
        p = b.setp(CmpOp.LT, tid, 16)
        b.cbr(p, "lo", "hi")
        b.new_block("lo")
        p2 = b.setp(CmpOp.LT, tid, 8)
        b.cbr(p2, "lo8", "lo16")
        b.new_block("lo8")
        b.mov_to(v, 1)
        b.br("join")
        b.new_block("lo16")
        b.mov_to(v, 2)
        b.br("join")
        b.new_block("hi")
        b.mov_to(v, 3)
        b.br("join")
        b.new_block("join")
        _store(b, out, tid, v)
        b.exit()
        mem, out_addr, prof = _run_kernel(b)
        got = mem.read_array(out_addr, (32,), DataType.S32)
        expected = [1] * 8 + [2] * 8 + [3] * 16
        assert list(got) == expected
        assert prof.divergent_branches == 2

    def test_exit_inside_branch_does_not_resurrect(self):
        """Lanes that exit in one arm must stay dead after reconvergence."""
        b = IRBuilder("earlyexit", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        _store(b, out, tid, b.imm(5, DataType.S32))
        p = b.setp(CmpOp.LT, tid, 10)
        b.cbr(p, "quit", "cont")
        b.new_block("quit")
        b.exit()
        b.new_block("cont")
        _store(b, out, tid, b.imm(9, DataType.S32))
        b.exit()
        mem, out_addr, _ = _run_kernel(b)
        got = mem.read_array(out_addr, (32,), DataType.S32)
        assert list(got[:10]) == [5] * 10
        assert list(got[10:]) == [9] * 22

    def test_data_dependent_loop_trip_counts(self):
        """while (x > 0) x -= 3 — per-lane trip counts differ."""
        b = IRBuilder("loop3", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        x = b.fresh_reg(DataType.S32, "x")
        b.mov_to(x, tid)
        b.br("head")
        b.new_block("head")
        p = b.setp(CmpOp.GT, x, 0)
        b.cbr(p, "body", "done")
        b.new_block("body")
        b.mov_to(x, b.sub(x, 3))
        b.br("head")
        b.new_block("done")
        _store(b, out, tid, x)
        b.exit()
        mem, out_addr, _ = _run_kernel(b)
        got = mem.read_array(out_addr, (32,), DataType.S32)
        for t in range(32):
            expect = t
            while expect > 0:
                expect -= 3
            assert got[t] == expect

    def test_runaway_loop_trapped(self):
        b = IRBuilder("forever", _out_param())
        b.new_block("entry")
        b.br("entry2")
        b.new_block("entry2")
        b.br("entry2")
        func = b.finish()
        mem = GlobalMemory(1 << 12)
        from repro.gpu import WarpContext, WarpExecutor

        ctx = WarpContext(
            tid_x=np.arange(32, dtype=np.int32),
            tid_y=np.zeros(32, dtype=np.int32),
            ctaid_x=0, ctaid_y=0, ntid_x=32, ntid_y=1,
            nctaid_x=1, nctaid_y=1, warp_id=0,
            lane_mask=np.ones(32, bool),
        )
        ex = WarpExecutor(func, mem, {"out_ptr": 128})
        import repro.gpu.simt as simt_mod

        old = simt_mod.MAX_WARP_INSTRUCTIONS
        simt_mod.MAX_WARP_INSTRUCTIONS = 1000
        try:
            with pytest.raises(SimtError, match="runaway"):
                ex.run(ctx)
        finally:
            simt_mod.MAX_WARP_INSTRUCTIONS = old

    def test_undefined_register_read_trapped(self):
        b = IRBuilder("ghostread", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        ghost = Register("never_written", DataType.S32)
        # Forge an instruction using an undefined register, bypassing verify.
        b.block.append(
            Instruction(Opcode.ADD, DataType.S32,
                        Register("d", DataType.S32),
                        [ghost, Immediate(1, DataType.S32)])
        )
        _store(b, out, tid, Register("d", DataType.S32))
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 12)
        from repro.gpu.launch import execute_block

        with pytest.raises(SimtError, match="undefined register"):
            execute_block(func, LaunchConfig((1, 1), (32, 1)), (0, 0), mem,
                          {"out_ptr": 128})


class TestSpecialRegisters:
    def test_block_and_grid_ids(self):
        b = IRBuilder("ids", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        ctaid = b.special(SpecialReg.CTAID_X)
        ntid = b.special(SpecialReg.NTID_X)
        gidx = b.mad(ctaid, ntid, tid)
        _store(b, out, gidx, gidx)
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 14)
        out_addr = mem.alloc(64 * 4)
        launch(func, LaunchConfig((2, 1), (32, 1)), mem, {"out_ptr": out_addr})
        got = mem.read_array(out_addr, (64,), DataType.S32)
        assert np.array_equal(got, np.arange(64))

    def test_2d_thread_layout(self):
        """tid.x/tid.y decomposition for a 16x2 block (one warp)."""
        b = IRBuilder("xy", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tx = b.special(SpecialReg.TID_X)
        ty = b.special(SpecialReg.TID_Y)
        ntx = b.special(SpecialReg.NTID_X)
        lin = b.mad(ty, ntx, tx)
        packed = b.mad(ty, b.imm(100, DataType.S32), tx)
        _store(b, out, lin, packed)
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 12)
        out_addr = mem.alloc(32 * 4)
        launch(func, LaunchConfig((1, 1), (16, 2)), mem, {"out_ptr": out_addr})
        got = mem.read_array(out_addr, (32,), DataType.S32)
        for ty_ in range(2):
            for tx_ in range(16):
                assert got[ty_ * 16 + tx_] == ty_ * 100 + tx_

    def test_partial_warp_lane_mask(self):
        """A 20-thread block must not write lanes 20..31."""
        b = IRBuilder("partial", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        _store(b, out, tid, b.imm(1, DataType.S32))
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 12)
        out_addr = mem.alloc(32 * 4)
        launch(func, LaunchConfig((1, 1), (20, 1)), mem, {"out_ptr": out_addr})
        got = mem.read_array(out_addr, (32,), DataType.S32)
        assert list(got[:20]) == [1] * 20
        assert list(got[20:]) == [0] * 12


class TestLaunchValidation:
    def test_missing_param_rejected(self):
        b = IRBuilder("needs", _out_param())
        b.new_block("entry")
        b.ld_param("out_ptr")
        b.exit()
        with pytest.raises(ValueError, match="missing parameters"):
            launch(b.finish(), LaunchConfig((1, 1), (32, 1)),
                   GlobalMemory(1 << 12), {})

    def test_block_outside_grid_rejected(self):
        b = IRBuilder("k", [])
        b.new_block("entry")
        b.exit()
        with pytest.raises(ValueError, match="outside grid"):
            launch(b.finish(), LaunchConfig((2, 2), (32, 1)),
                   GlobalMemory(1 << 12), {}, blocks=[((5, 0), None)])

    @settings(max_examples=20)
    @given(gx=st.integers(1, 4), gy=st.integers(1, 4))
    def test_grid_coverage(self, gx, gy):
        """Every block executes exactly once in a full launch."""
        b = IRBuilder("count", _out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        tid = b.special(SpecialReg.TID_X)
        cx = b.special(SpecialReg.CTAID_X)
        cy = b.special(SpecialReg.CTAID_Y)
        ncx = b.special(SpecialReg.NCTAID_X)
        bid = b.mad(cy, ncx, cx)
        p = b.setp(CmpOp.EQ, tid, 0)
        b.cbr(p, "w", "done")
        b.new_block("w")
        _store(b, out, bid, b.imm(1, DataType.S32))
        b.br("done")
        b.new_block("done")
        b.exit()
        func = b.finish()
        mem = GlobalMemory(1 << 14)
        out_addr = mem.alloc(gx * gy * 4)
        launch(func, LaunchConfig((gx, gy), (32, 1)), mem, {"out_ptr": out_addr})
        got = mem.read_array(out_addr, (gx * gy,), DataType.S32)
        assert np.all(got == 1)
