"""Hipacc-like image processing DSL, embedded in Python.

Mirrors the programming model of paper Listing 4: images, masks/domains,
boundary conditions, accessors, iteration spaces, and user kernels with
``iterate``/``convolve``.
"""

from .accessor import Accessor
from .boundary import Boundary, BoundaryCondition, reference_index
from .expr import (
    BinOp,
    Const,
    Expr,
    PixelAccess,
    UnOp,
    cosf,
    exp2f,
    expf,
    fabsf,
    fmaxf,
    fminf,
    log2f,
    logf,
    pixel_accesses,
    powf,
    rcpf,
    rsqrtf,
    sinf,
    sqrtf,
    walk,
    wrap,
)
from .image import Image
from .iterationspace import IterationSpace
from .kernel import Kernel
from .mask import Domain, Mask
from .pipeline import Pipeline

__all__ = [
    "Accessor",
    "BinOp",
    "Boundary",
    "BoundaryCondition",
    "Const",
    "Domain",
    "Expr",
    "Image",
    "IterationSpace",
    "Kernel",
    "Mask",
    "Pipeline",
    "PixelAccess",
    "UnOp",
    "cosf",
    "exp2f",
    "expf",
    "fabsf",
    "fmaxf",
    "fminf",
    "log2f",
    "logf",
    "pixel_accesses",
    "powf",
    "rcpf",
    "reference_index",
    "rsqrtf",
    "sinf",
    "sqrtf",
    "walk",
    "wrap",
]
