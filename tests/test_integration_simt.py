"""End-to-end correctness: DSL -> compiler -> SIMT simulator vs NumPy.

Every filter of the paper's evaluation, under every border pattern and every
compiled variant, must produce the golden reference output bit-for-bit
(float32 tolerance for kernels using transcendentals, where the simulator's
``ex2``-based ``expf`` and NumPy's ``exp`` legitimately differ in the last
ulp).
"""

import numpy as np
import pytest

from repro.compiler import Variant
from repro.dsl import Boundary
from repro.filters import (
    PIPELINES,
    bilateral,
    gaussian,
    laplace,
    night,
    sobel,
)
from repro.filters.reference import (
    bilateral_reference,
    correlate,
    gaussian_reference,
    laplace_reference,
    night_reference,
    sobel_reference,
)
from repro.runtime import run_pipeline_simt

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]
VARIANTS = [Variant.NAIVE, Variant.ISP]
CONST = 0.25


@pytest.fixture(scope="module")
def src48():
    return np.random.default_rng(7).random((48, 48)).astype(np.float32)


@pytest.fixture(scope="module")
def src32():
    return np.random.default_rng(8).random((32, 32)).astype(np.float32)


@pytest.mark.parametrize("boundary", PATTERNS)
@pytest.mark.parametrize("variant", VARIANTS)
class TestSingleKernelFilters:
    def test_gaussian(self, boundary, variant, src48):
        pipe = gaussian.build_pipeline(48, 48, boundary, CONST)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src48})
        ref = gaussian_reference(src48, boundary, CONST)
        assert np.abs(res.output - ref).max() < 1e-6

    def test_laplace(self, boundary, variant, src48):
        pipe = laplace.build_pipeline(48, 48, boundary, CONST)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src48})
        ref = laplace_reference(src48, boundary, CONST)
        assert np.abs(res.output - ref).max() < 1e-4  # sums of 25 taps

    def test_bilateral_7x7(self, boundary, variant, src32):
        pipe = bilateral.build_pipeline(32, 32, boundary, CONST, radius=3)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src32})
        ref = bilateral_reference(src32, boundary, CONST, radius=3)
        assert np.abs(res.output - ref).max() < 1e-4


@pytest.mark.parametrize("boundary", [Boundary.CLAMP, Boundary.REPEAT])
@pytest.mark.parametrize("variant", VARIANTS)
class TestPipelines:
    def test_sobel_all_stages(self, boundary, variant, src48):
        pipe = sobel.build_pipeline(48, 48, boundary, CONST)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src48})
        ref = sobel_reference(src48, boundary, CONST)
        assert np.abs(res.images["dx"] - ref["dx"]).max() < 1e-5
        assert np.abs(res.images["dy"] - ref["dy"]).max() < 1e-5
        assert np.abs(res.output - ref["mag"]).max() < 1e-4

    def test_night_pipeline(self, boundary, variant, src48):
        pipe = night.build_pipeline(48, 48, boundary, CONST)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src48})
        ref = night_reference(src48, boundary, CONST)
        assert np.abs(res.output - ref).max() < 1e-4


class TestFullBilateral13x13:
    """One full-window bilateral configuration (the paper's 13x13)."""

    def test_isp_matches_reference(self, src32):
        pipe = bilateral.build_pipeline(32, 32, Boundary.CLAMP)
        res = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                                inputs={"inp": src32})
        ref = bilateral_reference(src32, Boundary.CLAMP)
        assert np.abs(res.output - ref).max() < 1e-4


class TestWarpGrained:
    def test_warp_isp_all_patterns(self):
        src = np.random.default_rng(9).random((32, 128)).astype(np.float32)
        mask = np.ones((3, 3), np.float32) / 9.0
        from tests.conftest import make_conv_kernel
        from repro.dsl import Pipeline

        for boundary in PATTERNS:
            k = make_conv_kernel(128, 32, boundary, mask)
            pipe = Pipeline("conv", [k])
            res = run_pipeline_simt(pipe, variant=Variant.ISP_WARP,
                                    block=(64, 2), inputs={"inp": src})
            ref = correlate(src, mask, boundary)
            assert np.abs(res.output - ref).max() < 1e-6, boundary


class TestRaggedSizes:
    """Grids that over-cover the image exercise the bounds guard."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_non_divisible_image(self, variant):
        src = np.random.default_rng(10).random((37, 45)).astype(np.float32)
        pipe = gaussian.build_pipeline(45, 37, Boundary.MIRROR)
        res = run_pipeline_simt(pipe, variant=variant, block=(16, 4),
                                inputs={"inp": src})
        ref = gaussian_reference(src, Boundary.MIRROR)
        assert np.abs(res.output - ref).max() < 1e-6

    def test_degenerate_isp_falls_back_but_is_correct(self):
        src = np.random.default_rng(11).random((16, 16)).astype(np.float32)
        pipe = bilateral.build_pipeline(16, 16, Boundary.CLAMP)  # 13x13 window!
        res = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                                inputs={"inp": src})
        assert res.compiled[0].effective_variant is Variant.NAIVE
        ref = bilateral_reference(src, Boundary.CLAMP)
        assert np.abs(res.output - ref).max() < 1e-4


class TestVariantsAgree:
    """All variants of the same kernel are bit-identical to each other
    (they evaluate the same float32 expression in the same order)."""

    @pytest.mark.parametrize("boundary", PATTERNS)
    def test_naive_vs_isp_bitexact(self, boundary, src48):
        pipe = gaussian.build_pipeline(48, 48, boundary, CONST)
        a = run_pipeline_simt(pipe, variant=Variant.NAIVE, block=(16, 4),
                              inputs={"inp": src48})
        b = run_pipeline_simt(pipe, variant=Variant.ISP, block=(16, 4),
                              inputs={"inp": src48})
        assert np.array_equal(a.output, b.output)


def test_all_registry_pipelines_buildable():
    for name, build in PIPELINES.items():
        pipe = build(64, 64, Boundary.CLAMP)
        assert len(pipe) >= 1, name
