"""Instruction set of the virtual PTX-like ISA.

The opcode vocabulary is chosen so that the categories inventoried by the
paper's Table I (``add``, ``max``, ``cvt``, ``setp``, ``selp``, ``mad``,
``ld``, ``st``, ``bra``, ...) map one-to-one onto our opcodes. Section IV-A of
the paper counts instructions *by keyword* ("add.s32 and add.i32 are both
counted as an add instruction"); :mod:`repro.ir.stats` applies the same
keyword-level grouping.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Sequence, Union

from .types import DataType, coerce_immediate


class Opcode(enum.Enum):
    """Virtual ISA opcodes (PTX keyword per opcode)."""

    # Data movement
    MOV = "mov"
    LDPARAM = "ld.param"
    LD = "ld.global"
    ST = "st.global"
    #: textured 2-D load: hardware address-mode border handling (paper
    #: Section I: "GPUs typically provide dedicated hardware support such as
    #: texture memory ... cached and can be efficiently accessed at the
    #: image border. However, the access is bound to the image size").
    TEX = "tex"
    #: shared-memory (per-block scratchpad) accesses — used by the
    #: tile-staging variant, where border handling happens once per halo
    #: pixel during the cooperative load instead of once per tap.
    LDS = "ld.shared"
    STS = "st.shared"
    #: block-wide barrier (PTX bar.sync); must execute in uniform control flow
    BAR = "bar"
    # Integer / float arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"  # d = a * b + c (fma for f32)
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    # Bitwise / shifts
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Comparison and selection
    SETP = "setp"
    SELP = "selp"
    # Conversions
    CVT = "cvt"
    # Transcendental (SFU on real hardware)
    EX2 = "ex2"  # 2**x
    LG2 = "lg2"  # log2(x)
    RCP = "rcp"  # 1/x
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    # Control flow (terminators)
    BRA = "bra"
    EXIT = "exit"

    @property
    def keyword(self) -> str:
        """Leading PTX keyword — the unit of the paper's instruction counting."""
        return self.value.split(".")[0]


#: Terminator opcodes — must appear exactly once, at the end of a basic block.
TERMINATORS = frozenset({Opcode.BRA, Opcode.EXIT})

#: Opcodes whose cost the GPU cost model bills as SFU operations.
SFU_OPS = frozenset(
    {Opcode.EX2, Opcode.LG2, Opcode.RCP, Opcode.SQRT, Opcode.RSQRT, Opcode.SIN, Opcode.COS}
)

#: Opcodes that access global memory.
MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.TEX})

#: Opcodes that access the per-block shared scratchpad.
SHARED_OPS = frozenset({Opcode.LDS, Opcode.STS})

_ARITY = {
    Opcode.MOV: 1,
    Opcode.LDPARAM: 0,
    Opcode.LD: 1,
    Opcode.ST: 2,
    Opcode.TEX: 2,
    Opcode.LDS: 1,
    Opcode.STS: 2,
    Opcode.BAR: 0,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.MAD: 3,
    Opcode.DIV: 2,
    Opcode.REM: 2,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.ABS: 1,
    Opcode.NEG: 1,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.NOT: 1,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.SETP: 2,
    Opcode.SELP: 3,
    Opcode.CVT: 1,
    Opcode.EX2: 1,
    Opcode.LG2: 1,
    Opcode.RCP: 1,
    Opcode.SQRT: 1,
    Opcode.RSQRT: 1,
    Opcode.SIN: 1,
    Opcode.COS: 1,
    Opcode.BRA: 0,
    Opcode.EXIT: 0,
}


class CmpOp(enum.Enum):
    """Comparison predicates for ``setp`` (PTX spelling)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class SpecialReg(enum.Enum):
    """Read-only special registers (PTX ``%tid`` etc.).

    The region-switching code of ISP (paper Listings 3 and 5) is driven by
    ``%ctaid`` (block index) and, for warp-grained partitioning, the warp index
    derived from ``%tid``.
    """

    TID_X = "%tid.x"
    TID_Y = "%tid.y"
    NTID_X = "%ntid.x"
    NTID_Y = "%ntid.y"
    CTAID_X = "%ctaid.x"
    CTAID_Y = "%ctaid.y"
    NCTAID_X = "%nctaid.x"
    NCTAID_Y = "%nctaid.y"
    LANEID = "%laneid"
    WARPID = "%warpid"


@dataclasses.dataclass(frozen=True)
class Register:
    """A typed virtual register. Identity is ``(name)``; the verifier checks
    that a name is never redefined with a different type."""

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclasses.dataclass(frozen=True)
class Immediate:
    """A typed literal operand, pre-coerced to its dtype's lattice."""

    value: Union[int, float, bool]
    dtype: DataType

    def __post_init__(self):
        object.__setattr__(self, "value", coerce_immediate(self.value, self.dtype))

    def __str__(self) -> str:
        if self.dtype is DataType.F32:
            return f"0F({self.value!r})"
        return str(self.value)


Operand = Union[Register, Immediate]


@dataclasses.dataclass
class Instruction:
    """One virtual-ISA instruction.

    Attributes
    ----------
    op:
        The opcode.
    dtype:
        The operating type. For ``setp`` this is the *compared* type (the
        destination is always a predicate); for ``cvt`` it is the destination
        type and ``src_dtype`` holds the source type.
    dst:
        Destination register (``None`` for stores and terminators).
    srcs:
        Source operands, in opcode-defined order. ``st dst_addr, value``
        stores ``srcs[1]`` at address ``srcs[0]``.
    cmp:
        Comparison operator, ``setp`` only.
    pred:
        Guard predicate for ``bra`` (``None`` = unconditional).
    target / target_else:
        Branch targets (labels). ``target_else`` is the fall-through label and
        is filled in by the builder so every conditional branch is explicit.
    param:
        Parameter name for ``ld.param``.
    src_dtype:
        Source type for ``cvt``.
    special:
        Special register read for ``mov`` from a :class:`SpecialReg`.
    region:
        Optional tag naming the ISP region this instruction belongs to —
        carried through compilation so the profiler can attribute dynamic
        counts per region as in the paper's Table I.
    role:
        Optional tag: ``"check"`` (border-handling address check),
        ``"switch"`` (region-switch statement), ``"kernel"`` (filter math),
        ``"addr"`` (plain address arithmetic). Used by the model calibration
        (n_check / n_switch / n_kernel in paper Eqs. 3-6).
    """

    op: Opcode
    dtype: DataType
    dst: Optional[Register] = None
    srcs: Sequence[Operand] = ()
    cmp: Optional[CmpOp] = None
    pred: Optional[Register] = None
    pred_negated: bool = False
    target: Optional[str] = None
    target_else: Optional[str] = None
    param: Optional[str] = None
    src_dtype: Optional[DataType] = None
    special: Optional[SpecialReg] = None
    #: TEX only: hardware address mode, "clamp" (clamp-to-edge) or
    #: "border" (out-of-range reads return ``tex_border_value``), matching
    #: CUDA's cudaAddressModeClamp / cudaAddressModeBorder for unnormalized
    #: coordinates.
    tex_mode: Optional[str] = None
    tex_border_value: float = 0.0
    region: Optional[str] = None
    role: Optional[str] = None

    def __post_init__(self):
        self.srcs = tuple(self.srcs)
        expected = _ARITY[self.op]
        if self.op is Opcode.MOV and self.special is not None:
            expected = 0
        if len(self.srcs) != expected:
            raise ValueError(
                f"{self.op.value} expects {expected} source operands, got {len(self.srcs)}"
            )
        if self.op is Opcode.SETP and self.cmp is None:
            raise ValueError("setp requires a comparison operator")
        if self.op is Opcode.CVT and self.src_dtype is None:
            raise ValueError("cvt requires src_dtype")
        if self.op is Opcode.LDPARAM and self.param is None:
            raise ValueError("ld.param requires a parameter name")
        if self.op is Opcode.TEX and self.param is None:
            raise ValueError("tex requires the sampled image's name")

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def keyword(self) -> str:
        """Paper-style counting keyword (``add``, ``setp``, ``ld``...)."""
        return self.op.keyword

    def defined_register(self) -> Optional[Register]:
        return self.dst

    def used_registers(self) -> list[Register]:
        used = [s for s in self.srcs if isinstance(s, Register)]
        if self.pred is not None:
            used.append(self.pred)
        return used
