"""Tests of the CUDA source emitter against the paper's listing shapes."""

import numpy as np
import pytest

from repro.compiler import Variant, emit_cuda, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral, sobel
from tests.conftest import make_conv_kernel

MASK3 = np.ones((3, 3), np.float32) / 9.0


def desc_for(boundary, width=512, height=512):
    return trace_kernel(make_conv_kernel(width, height, boundary, MASK3))


class TestListing1Patterns:
    """Each pattern's characteristic check shape (paper Listing 1)."""

    def test_clamp(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.NAIVE)
        assert "if (xx" in src and "= 0;" in src
        assert "inp_w - 1" in src

    def test_mirror(self):
        src = emit_cuda(desc_for(Boundary.MIRROR), Variant.NAIVE)
        assert "- 1" in src
        assert "2 * inp_w" in src  # 2*size - x - 1

    def test_repeat_uses_while(self):
        src = emit_cuda(desc_for(Boundary.REPEAT), Variant.NAIVE)
        assert "while (" in src
        assert "+= inp_w" in src and "-= inp_w" in src

    def test_constant_validity(self):
        src = emit_cuda(desc_for(Boundary.CONSTANT), Variant.NAIVE)
        assert "bool ok" in src
        assert "? v" in src  # select against the constant


class TestListing3Shape:
    def test_switch_chain_order(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP)
        order = ["goto TL;", "goto TR;", "goto T;", "goto BL;", "goto BR;",
                 "goto B;", "goto R;", "goto L;", "goto Body;"]
        pos = [src.index(tag) for tag in order]
        assert pos == sorted(pos), "dispatch must follow Listing 3 order"

    def test_bounds_in_header_comment(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP)
        assert "BH_L=" in src and "BH_R=" in src

    def test_body_region_check_free(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP)
        body = src[src.index("\nBody:"):src.index("goto done;", src.index("\nBody:"))]
        assert "if (" not in body
        assert "while (" not in body

    def test_region_labels_present(self):
        src = emit_cuda(desc_for(Boundary.MIRROR), Variant.ISP)
        for label in ("TL:", "TR:", "T:", "BL:", "BR:", "B:", "R:", "L:", "Body:"):
            assert f"\n{label}" in src or f" {label}" in src


class TestListing5Shape:
    def test_warp_refinement(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP_WARP, (128, 1))
        assert "warp_x = threadIdx.x >> 5" in src
        assert "if (warp_x >" in src or "if (warp_x <" in src
        # re-route from L to Body per Listing 5
        assert "goto Body;" in src

    def test_narrow_block_has_no_warp_dispatch(self):
        src = emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP_WARP, (32, 4))
        assert "warp_x" not in src


class TestGeneralProperties:
    def test_point_operator_emits_naive_shape(self):
        pipe = sobel.build_pipeline(64, 64, Boundary.CLAMP)
        mag = trace_kernel(pipe.kernels[2])
        src = emit_cuda(mag, Variant.ISP)
        assert "goto" not in src
        assert "sqrtf(" in src

    def test_bilateral_uses_expf(self):
        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        src = emit_cuda(desc, Variant.NAIVE)
        assert "expf(" in src
        assert src.count("inp[") == 169  # 13x13 window

    def test_degenerate_isp_rejected(self):
        desc = trace_kernel(make_conv_kernel(
            8, 8, Boundary.CLAMP, np.ones((13, 13), np.float32)))
        with pytest.raises(ValueError, match="degenerate"):
            emit_cuda(desc, Variant.ISP)

    def test_policy_variant_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            emit_cuda(desc_for(Boundary.CLAMP), Variant.ISP_MODEL)

    def test_guard_emitted_for_ragged_sizes(self):
        src = emit_cuda(desc_for(Boundary.CLAMP, 130, 130), Variant.NAIVE)
        assert "if (gx >= out_w || gy >= out_h) return;" in src
