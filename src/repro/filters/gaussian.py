"""Gaussian blur — 3x3 single-kernel filter (paper Section VI).

The classic binomial approximation of a Gaussian; the cheapest kernel in the
evaluation, and therefore (per the paper's model, Section IV-A.3) among the
biggest beneficiaries of ISP: its address-calculation cost is large relative
to the filter math.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)

#: 3x3 binomial mask (sums to 1).
GAUSSIAN_MASK = np.array(
    [[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32
) / 16.0


class GaussianKernel(Kernel):
    """out(x, y) = sum_w mask(w) * in(x + wx, y + wy)  (paper Listing 4 shape)."""

    def __init__(self, iter_space: IterationSpace, acc: Accessor, mask: Mask):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask

    @property
    def name(self) -> str:
        return "gaussian"

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def build_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    constant: float = 0.0,
    input_image: Optional[Image] = None,
) -> Pipeline:
    """Single-kernel Gaussian pipeline over a width x height image."""
    inp = input_image or Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    kernel = GaussianKernel(IterationSpace(out), acc, Mask(GAUSSIAN_MASK))
    return Pipeline("gaussian", [kernel])
