"""Serve engine: correctness under concurrency, timeouts, backpressure.

The engine must be a *transparent* performance layer: whatever it serves has
to be bit-identical to calling the vectorized executor directly, no matter
how requests are batched, cached, or raced across workers.
"""

import threading
import time

import numpy as np
import pytest

from repro.dsl import Boundary
from repro.filters import PIPELINES
from repro.runtime import run_pipeline_vectorized
from repro.serve import (
    EngineClosed,
    EngineSaturated,
    Request,
    ServeEngine,
)


def _direct(app: str, image, pattern: str, variant: str = "isp"):
    pipe = PIPELINES[app](image.shape[1], image.shape[0], Boundary(pattern))
    images = run_pipeline_vectorized(pipe, {pipe.inputs[0].name: image},
                                     variant=variant)
    return images[pipe.output.name]


@pytest.fixture
def image(rng):
    return rng.random((64, 64), dtype=np.float32)


class TestBasicServing:
    def test_single_request_matches_direct_execution(self, image):
        with ServeEngine(workers=2) as engine:
            resp = engine.run([Request(app="gaussian", image=image,
                                       pattern="mirror", variant="isp")])[0]
        assert resp.ok, resp.error
        assert np.array_equal(resp.output, _direct("gaussian", image, "mirror"))
        assert resp.worker.startswith("serve-")

    def test_all_apps_and_patterns_serve_correctly(self, image):
        reqs, refs = [], []
        for app in ("gaussian", "laplace", "bilateral", "sobel", "night"):
            for pattern in ("clamp", "repeat"):
                reqs.append(Request(app=app, image=image, pattern=pattern,
                                    variant="isp"))
                refs.append(_direct(app, image, pattern))
        with ServeEngine(workers=4) as engine:
            responses = engine.run(reqs)
        for resp, ref in zip(responses, refs):
            assert resp.ok, resp.error
            assert np.array_equal(resp.output, ref)

    def test_cache_hits_accumulate_for_repeated_workloads(self, image):
        with ServeEngine(workers=2) as engine:
            engine.run([Request(app="sobel", image=image, variant="isp")
                        for _ in range(10)])
            stats = engine.stats()
        assert stats["engine"]["engine.plan_cache_misses"] == 1
        assert stats["engine"]["engine.plan_cache_hits"] == 9
        assert stats["engine"]["engine.responses_ok"] == 10
        assert stats["latency"]["engine.execute_seconds"]["count"] == 10

    def test_tiled_execution_is_bit_identical(self, image):
        with ServeEngine(workers=1) as engine:
            plain, tiled = engine.run([
                Request(app="laplace", image=image, variant="isp"),
                Request(app="laplace", image=image, variant="isp",
                        tile_rows=7),
            ])
        assert np.array_equal(plain.output, tiled.output)

    def test_request_validation(self, image):
        with pytest.raises(ValueError):
            Request(app="gaussian", image=image, variant="warp11")
        with pytest.raises(ValueError):
            Request(app="gaussian", image=image, exec_mode="fpga")
        with pytest.raises(ValueError):
            Request(app="gaussian", image=np.zeros(16, np.float32))

    def test_submit_after_close_raises(self, image):
        engine = ServeEngine(workers=1)
        engine.close()
        with pytest.raises(EngineClosed):
            engine.submit(Request(app="gaussian", image=image))


class TestConcurrency:
    def test_concurrent_submitters_get_bit_identical_outputs(self, rng):
        """≥4 threads hammer one engine; every response must equal the
        single-threaded direct execution bit for bit."""
        images = [rng.random((48, 48), dtype=np.float32) for _ in range(4)]
        cases = [("gaussian", "clamp"), ("laplace", "mirror"),
                 ("sobel", "repeat"), ("night", "clamp")]
        refs = {
            (app, pattern, i): _direct(app, img, pattern)
            for app, pattern in cases
            for i, img in enumerate(images)
        }
        failures: list[str] = []

        with ServeEngine(workers=4, queue_depth=256) as engine:
            def submitter(app: str, pattern: str):
                for rep in range(3):
                    for i, img in enumerate(images):
                        resp = engine.submit(
                            Request(app=app, image=img, pattern=pattern,
                                    variant="isp"),
                            block=True,
                        ).result(timeout=60)
                        if not resp.ok:
                            failures.append(resp.error)
                        elif not np.array_equal(resp.output,
                                                refs[(app, pattern, i)]):
                            failures.append(f"{app}/{pattern}/{i}: mismatch")

            threads = [threading.Thread(target=submitter, args=case)
                       for case in cases]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            stats = engine.stats()

        assert not failures, failures[:3]
        total = stats["engine"]["engine.responses_ok"]
        assert total == 4 * 3 * 4
        # 4 distinct workloads -> at most 4 cold builds for 48 requests.
        assert stats["engine"]["engine.plan_cache_misses"] <= 4
        assert stats["engine"]["engine.plan_cache_hits"] >= total - 4

    def test_micro_batching_groups_same_signature(self, image):
        gate = threading.Event()
        original = ServeEngine._execute

        def gated(self, plan, pending, response):
            gate.wait(10.0)
            return original(self, plan, pending, response)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ServeEngine, "_execute", gated)
            with ServeEngine(workers=1, batch_size=8) as engine:
                handles = [
                    engine.submit(Request(app="gaussian", image=image,
                                          variant="isp"))
                    for _ in range(6)
                ]
                time.sleep(0.1)  # let the worker take the first request
                gate.set()
                responses = [h.result(timeout=30) for h in handles]
                stats = engine.stats()

        assert all(r.ok for r in responses)
        # First dequeue grabs whatever is queued (1 request); the remaining 5
        # coalesce into at most one more batch.
        assert stats["engine"]["engine.batches"] <= 3
        assert stats["engine"]["engine.plan_cache_misses"] == 1


class TestPlanBatchExecution:
    """ExecutionPlan.execute_batch: one (N, H, W) call, batch-agnostic plans."""

    def test_execute_batch_bitexact_for_every_variant(self, rng):
        from repro.serve.plan import PLAN_VARIANTS, build_plan

        stack = rng.random((3, 32, 32), dtype=np.float32)
        for variant in PLAN_VARIANTS:
            if variant in ("isp", "isp_warp"):
                continue  # 32x32 with block (32, 4) is degenerate for pure ISP
            plan = build_plan("laplace", "mirror", 32, 32, variant=variant)
            batched = plan.execute_batch(stack)
            assert batched.shape == (3, 32, 32), variant
            for i in range(3):
                assert np.array_equal(batched[i], plan.execute(stack[i])), (
                    variant, i)

    def test_plan_identity_is_batch_agnostic(self, rng):
        """Batch size is an execution-time property: the same PlanKey (and so
        the same cached plan) serves N=1 and N=8."""
        from repro.serve.plan import build_plan, plan_key, trace_app

        descs = trace_app("gaussian", "clamp", 64, 64)
        k1 = plan_key(descs, variant="prepad", pattern="clamp")
        k8 = plan_key(descs, variant="prepad", pattern="clamp")
        assert k1 == k8  # nothing batch-shaped to differ on
        plan = build_plan("gaussian", "clamp", 64, 64, variant="prepad")
        single = plan.execute(rng.random((64, 64), dtype=np.float32))
        stack = rng.random((8, 64, 64), dtype=np.float32)
        assert plan.execute_batch(stack).shape == (8, 64, 64)
        assert single.shape == (64, 64)

    def test_batch_shape_validation(self, rng):
        from repro.serve.plan import build_plan

        plan = build_plan("sobel", "clamp", 32, 32, variant="naive")
        with pytest.raises(ValueError, match="batch image shape"):
            plan.execute_batch(rng.random((32, 32), dtype=np.float32))
        with pytest.raises(ValueError, match="request image shape"):
            plan.execute(rng.random((2, 32, 32), dtype=np.float32))

    def test_prepad_plan_builds_and_sanitizes(self):
        from repro.serve.plan import build_plan

        plan = build_plan("gaussian", "mirror", 64, 64, variant="prepad")
        assert all(v == "prepad" for _, v in plan.stages())
        # The SIMT shape backing sanitize is the fully checked kernel; the
        # static sanitizer must pass it like any naive build.
        reports = plan.sanitize()
        assert reports and all(r.ok for r in reports)


class TestKernelBatching:
    """Engine-level (N, H, W) collapse of same-signature micro-batches."""

    def _run_gated(self, engine, image, n=6, tile_rows=None):
        """Block the single worker on the first (singleton) batch so the
        remaining requests pile up and dequeue as one micro-batch."""
        gate = threading.Event()
        original = ServeEngine._execute

        def gated(self, plan, pending, response):
            gate.wait(10.0)
            return original(self, plan, pending, response)

        taken = threading.Event()

        def gated_marking(self, plan, pending, response):
            taken.set()
            return gated(self, plan, pending, response)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ServeEngine, "_execute", gated_marking)
            handles = [engine.submit(Request(app="gaussian", image=image,
                                             variant="prepad",
                                             tile_rows=tile_rows))]
            # Wait until the worker has dequeued request 1 (a singleton
            # batch, so it runs _execute and parks on the gate) before
            # queueing the rest — they then dequeue as one micro-batch.
            taken.wait(10.0)
            handles += [
                engine.submit(Request(app="gaussian", image=image,
                                      variant="prepad", tile_rows=tile_rows))
                for _ in range(n - 1)
            ]
            time.sleep(0.05)
            gate.set()
            return [h.result(timeout=30) for h in handles]

    def test_same_signature_requests_collapse_to_one_kernel_call(self, image):
        with ServeEngine(workers=1, batch_size=8) as engine:
            responses = self._run_gated(engine, image)
            stats = engine.stats()
        assert all(r.ok for r in responses)
        ref = _direct("gaussian", image, "clamp", variant="prepad")
        for r in responses:
            assert np.array_equal(r.output, ref)
        # Requests 2..6 were queued behind the gate: exactly one kernel batch
        # of 5 (the first request went down the singleton path).
        assert stats["engine"]["engine.kernel_batches"] == 1
        assert stats["engine"]["engine.kernel_batched_requests"] == 5
        # Batched requests are real executions: latency is observed per
        # request, not per batch.
        assert stats["latency"]["engine.execute_seconds"]["count"] == 6

    def test_kernel_batching_can_be_disabled(self, image):
        with ServeEngine(workers=1, batch_size=8,
                         kernel_batching=False) as engine:
            responses = self._run_gated(engine, image)
            stats = engine.stats()["engine"]
        assert all(r.ok for r in responses)
        assert stats.get("engine.kernel_batches", 0) == 0

    def test_tiled_requests_bypass_the_batched_path(self, image):
        """tile_rows changes the evaluation strategy per request; such
        batches fall back to per-request execution (still bit-identical)."""
        with ServeEngine(workers=1, batch_size=8) as engine:
            responses = self._run_gated(engine, image, tile_rows=7)
            stats = engine.stats()["engine"]
        assert all(r.ok for r in responses)
        assert stats.get("engine.kernel_batches", 0) == 0
        ref = _direct("gaussian", image, "clamp", variant="prepad")
        for r in responses:
            assert np.array_equal(r.output, ref)

    def test_batch_failure_falls_back_to_per_request_execution(self, image):
        """If the one-shot stacked call fails, the engine must retry the
        micro-batch request-by-request — batching can only ever speed
        things up, never change an outcome."""
        from repro.serve.plan import ExecutionPlan

        def boom(self, images, *, tile_rows=None):
            raise RuntimeError("injected batch failure")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ExecutionPlan, "execute_batch", boom)
            with ServeEngine(workers=1, batch_size=8) as engine:
                responses = self._run_gated(engine, image)
                stats = engine.stats()["engine"]
        assert all(r.ok for r in responses), [r.error for r in responses]
        assert stats.get("engine.kernel_batches", 0) == 0
        ref = _direct("gaussian", image, "clamp", variant="prepad")
        for r in responses:
            assert np.array_equal(r.output, ref)


class TestDegradation:
    def test_compile_error_falls_back_to_naive(self, rng):
        # bilateral (5x5 window) on a 16x16 image with 32x4 blocks has a
        # degenerate ISP geometry: strict "isp" planning raises CompileError
        # and the engine must degrade to the naive plan, not fail.
        img = rng.random((16, 16), dtype=np.float32)
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="bilateral", image=img,
                                       variant="isp")])[0]
            stats = engine.stats()
        assert resp.ok, resp.error
        assert "compile:isp->naive" in resp.fallbacks
        assert stats["engine"]["engine.fallbacks_compile"] == 1
        assert np.array_equal(resp.output,
                              _direct("bilateral", img, "clamp", "naive"))

    def test_simt_timeout_falls_back_to_vectorized(self, rng):
        # Full SIMT simulation of 48x48 gaussian takes far longer than 50ms;
        # the engine must abandon it and serve the vectorized answer.
        img = rng.random((48, 48), dtype=np.float32)
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="gaussian", image=img,
                                       variant="naive", exec_mode="simt",
                                       timeout_s=0.05)])[0]
            stats = engine.stats()
        assert resp.ok, resp.error
        assert "timeout:simt->vectorized" in resp.fallbacks
        assert stats["engine"]["engine.fallbacks_timeout"] == 1
        assert np.array_equal(resp.output,
                              _direct("gaussian", img, "clamp", "naive"))

    def test_simt_within_budget_serves_simulated_result(self, rng):
        img = rng.random((16, 16), dtype=np.float32)
        with ServeEngine(workers=1) as engine:
            resp = engine.run([Request(app="gaussian", image=img,
                                       variant="naive", exec_mode="simt")])[0]
        assert resp.ok, resp.error
        assert resp.fallbacks == []
        # The SIMT simulator and the vectorized path agree closely (they are
        # different arithmetic orders, so allow float slack).
        ref = _direct("gaussian", img, "clamp", "naive")
        assert np.abs(resp.output - ref).max() < 1e-4

    def test_queue_timeout_fails_fast(self, image):
        gate = threading.Event()
        original = ServeEngine._execute

        def gated(self, plan, pending, response):
            gate.wait(10.0)
            return original(self, plan, pending, response)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ServeEngine, "_execute", gated)
            with ServeEngine(workers=1, batch_size=1) as engine:
                first = engine.submit(Request(app="gaussian", image=image,
                                              variant="isp"))
                time.sleep(0.05)  # worker is now gated on the first request
                late = engine.submit(Request(app="gaussian", image=image,
                                             variant="isp", timeout_s=0.01))
                time.sleep(0.1)  # let the deadline lapse while queued
                gate.set()
                assert first.result(timeout=30).ok
                resp = late.result(timeout=30)
                stats = engine.stats()
        assert not resp.ok
        assert "queued" in resp.error
        assert stats["engine"]["engine.timeouts_queue"] == 1


class TestDeadlineSemantics:
    """The deadline/result() bugfix sweep: inclusive (>=) boundaries, typed
    timeout_execute, and the caller-vs-worker expiry race."""

    def _gated_engine(self, mp, gate, **kwargs):
        original = ServeEngine._execute

        def gated(self, plan, pending, response):
            gate.wait(10.0)
            return original(self, plan, pending, response)

        mp.setattr(ServeEngine, "_execute", gated)
        return ServeEngine(**kwargs)

    def test_caller_expiry_while_queued_yields_typed_timeout(self, image):
        """result() whose wait expires past the request deadline resolves
        the request as a typed timeout_queue Response instead of raising —
        the race the old code left untyped."""
        gate = threading.Event()
        with pytest.MonkeyPatch.context() as mp:
            with self._gated_engine(mp, gate, workers=1,
                                    batch_size=1) as engine:
                first = engine.submit(Request(app="gaussian", image=image,
                                              variant="isp"))
                time.sleep(0.05)  # worker is now gated on the first request
                late = engine.submit(Request(app="gaussian", image=image,
                                             variant="isp", timeout_s=0.01))
                resp = late.result(timeout=0.3)  # expires past the deadline
                gate.set()
                assert first.result(timeout=30).ok
                # The worker eventually reaches the expired request too; the
                # caller's claim must have won exactly once.
                engine.close()
                stats = engine.stats()
        assert not resp.ok
        assert resp.error_kind == "timeout_queue"
        assert "queued" in resp.error
        assert stats["engine"]["engine.timeouts_queue"] == 1
        assert stats["engine"]["engine.responses_error"] == 1
        assert stats["engine"]["engine.responses_ok"] == 1
        # the losing worker resolution must not overwrite the caller's
        assert late.result(timeout=1).error_kind == "timeout_queue"

    def test_caller_wait_shorter_than_deadline_still_raises(self, image):
        """A short result() wait on a request whose own deadline has NOT
        passed is just an in-flight request — TimeoutError, no typing."""
        gate = threading.Event()
        with pytest.MonkeyPatch.context() as mp:
            with self._gated_engine(mp, gate, workers=1,
                                    batch_size=1) as engine:
                h = engine.submit(Request(app="gaussian", image=image,
                                          variant="isp", timeout_s=30.0))
                with pytest.raises(TimeoutError):
                    h.result(timeout=0.05)
                gate.set()
                assert h.result(timeout=30).ok

    def test_caller_expiry_during_execution_types_timeout_execute(self, image):
        """Expiry after the worker started executing is a different failure
        than expiry in the queue; the caller-side claim must say which."""
        gate = threading.Event()
        with ServeEngine(workers=1, batch_size=1) as engine:
            # Warm the plan cache so the timed request reaches the execute
            # phase quickly (a cold build would keep it typed as queued).
            assert engine.run([Request(app="gaussian", image=image,
                                       variant="isp")])[0].ok
            original = ServeEngine._execute

            def gated(self, plan, pending, response):
                gate.wait(10.0)
                return original(self, plan, pending, response)

            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(ServeEngine, "_execute", gated)
                h = engine.submit(Request(app="gaussian", image=image,
                                          variant="isp", timeout_s=0.1))
                time.sleep(0.05)  # worker dequeued it and is gated inside
                resp = h.result(timeout=0.3)
                gate.set()
            engine.close()
            stats = engine.stats()
        assert not resp.ok
        assert resp.error_kind == "timeout_execute"
        assert "during execution" in resp.error
        assert stats["engine"]["engine.timeouts_execute"] == 1

    def test_deadline_stopped_retries_fail_typed_as_timeout(self, image):
        """A failing execution stopped by the deadline with retry budget
        remaining is a timeout, not an 'execution' failure — the old loop
        conflated the two."""
        def failing(self, plan, pending, response):
            time.sleep(0.25)
            raise RuntimeError("transient")

        with ServeEngine(workers=1, batch_size=1, retries=10) as engine:
            assert engine.run([Request(app="gaussian", image=image,
                                       variant="isp")])[0].ok  # warm plan
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(ServeEngine, "_execute", failing)
                resp = engine.run([Request(app="gaussian", image=image,
                                           variant="isp", timeout_s=0.2)])[0]
            stats = engine.stats()
        assert not resp.ok
        assert resp.error_kind == "timeout_execute"
        assert resp.retries < 10  # the deadline, not the budget, stopped it
        assert stats["engine"]["engine.timeouts_execute"] == 1

    def test_exhausted_retry_budget_stays_typed_execution(self, image):
        """Without a deadline in play, exhausting retries is still a plain
        execution failure."""
        def failing(self, plan, pending, response):
            raise RuntimeError("persistent")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ServeEngine, "_execute", failing)
            with ServeEngine(workers=1, batch_size=1, retries=2) as engine:
                resp = engine.run([Request(app="gaussian", image=image,
                                           variant="isp")])[0]
        assert not resp.ok
        assert resp.error_kind == "execution"
        assert resp.retries == 2


class TestBackpressure:
    def test_saturated_queue_rejects_submissions(self, image):
        gate = threading.Event()
        original = ServeEngine._execute

        def gated(self, plan, pending, response):
            gate.wait(10.0)
            return original(self, plan, pending, response)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(ServeEngine, "_execute", gated)
            with ServeEngine(workers=1, queue_depth=2, batch_size=1) as engine:
                held = engine.submit(Request(app="gaussian", image=image,
                                             variant="isp"))
                time.sleep(0.05)  # worker holds request 1; queue is empty
                fillers = [
                    engine.submit(Request(app="gaussian", image=image,
                                          variant="isp"))
                    for _ in range(2)
                ]
                with pytest.raises(EngineSaturated):
                    engine.submit(Request(app="gaussian", image=image,
                                          variant="isp"))
                gate.set()
                responses = [h.result(timeout=30)
                             for h in [held] + fillers]
                stats = engine.stats()
        assert all(r.ok for r in responses)
        assert stats["engine"]["engine.requests_rejected"] == 1
        assert stats["engine"]["engine.responses_ok"] == 3

    def test_blocking_submit_waits_for_space(self, image):
        with ServeEngine(workers=2, queue_depth=2) as engine:
            responses = engine.run([
                Request(app="gaussian", image=image, variant="isp")
                for _ in range(12)
            ])
        assert len(responses) == 12
        assert all(r.ok for r in responses)


class TestStatsShape:
    def test_stats_exposes_engine_cache_and_latency(self, image):
        with ServeEngine(workers=1) as engine:
            engine.run([Request(app="gaussian", image=image, variant="isp")])
            stats = engine.stats()
        assert {"engine", "latency", "plan_cache"} <= set(stats)
        assert stats["plan_cache"]["size"] == 1
        for name in ("engine.queue_seconds", "engine.plan_build_seconds",
                     "engine.execute_seconds"):
            assert name in stats["latency"]
            assert {"count", "mean", "p50", "p90", "p99", "max"} <= set(
                stats["latency"][name]
            )


class TestCloseLifecycle:
    """close() is part of the cluster's crash-and-respawn story: shard
    lifecycle code calls it from signal handlers, monitor threads, and
    worker threads — idempotently, concurrently, sometimes reentrantly.
    None of those paths may raise, deadlock, or double-persist the tuner."""

    def test_double_close_is_idempotent(self, image):
        engine = ServeEngine(workers=2)
        engine.run([Request(app="gaussian", image=image, variant="isp")])
        engine.close()
        engine.close()  # must be a no-op, not an error
        with pytest.raises(EngineClosed):
            engine.submit(Request(app="gaussian", image=image))

    def test_concurrent_close_from_many_threads(self, image):
        engine = ServeEngine(workers=2)
        engine.run([Request(app="gaussian", image=image, variant="isp")])
        errors = []

        def _close():
            try:
                engine.close(timeout=10)
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=_close) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "close() deadlocked"
        assert not errors

    def test_close_persists_tuner_exactly_once(self, image, tmp_path):
        path = tmp_path / "tuner.json"
        engine = ServeEngine(workers=2, autotune_path=str(path))
        engine.run([Request(app="gaussian", image=image, variant="auto")
                    for _ in range(4)])
        threads = [threading.Thread(target=engine.close) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert path.exists()
        mtime = path.stat().st_mtime_ns
        engine.close()  # late close after the table was already persisted
        assert path.stat().st_mtime_ns == mtime  # not rewritten

    def test_context_manager_exit_then_explicit_close(self, image):
        with ServeEngine(workers=1) as engine:
            engine.run([Request(app="sobel", image=image, variant="isp")])
        engine.close()  # after __exit__ already closed it
