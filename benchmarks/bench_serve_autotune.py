"""Adaptive serving — the autotuner vs every static variant policy.

The point of ``repro.serve.autotune``: no single static variant wins every
configuration. On the vectorized executor the region-sliced variants pay a
fixed per-region dispatch cost, so full-mapping ``naive`` wins small images
while ``isp``/``isp_warp`` win large ones (the measured crossover sits
between 128 and 256 px on this host — the same economics as the paper's
Figure 3). A workload mixing both sides of the crossover therefore has no
good uniform policy, and an engine that learns the per-config winner should
match or beat the *best* static variant and clearly beat the worst.

Each policy runs on an identical engine over the identical mixed workload,
after an identical warmup pass that pre-builds plans (and, for ``auto``,
completes the tuner's trial phase) — so the timed window compares
steady-state serving, not cold compilation. Acceptance:

* adaptive throughput >= 0.98x the best static variant, and
* adaptive throughput strictly above the worst static variant.
"""

from __future__ import annotations

import time

from repro.reporting import format_table
from repro.serve import Request, ServeEngine, build_workload

from harness import stable_seed

APPS = ("gaussian", "laplace")
PATTERNS = ("clamp", "repeat")
#: one size on each side of the naive/region-sliced crossover
SIZES = (64, 384)
WARMUP_PASSES = 8
TIMED_REQUESTS = 96
STATIC_POLICIES = ("naive", "isp", "isp_warp")


def _interleave(parts: list[list[Request]]) -> list[Request]:
    return [r for group in zip(*parts) for r in group]


def _workloads(variant: str) -> tuple[list[Request], list[Request]]:
    """(warmup, timed) request lists for one policy over the same mix."""
    kinds_per_size = len(APPS) * len(PATTERNS)
    # Round-robin warmup, sizes interleaved: WARMUP_PASSES passes over every
    # config — enough to finish the tuner's trials (2 per candidate, 3
    # candidates) and to charge every plan build before the timed window.
    warmup = _interleave([
        build_workload(WARMUP_PASSES * kinds_per_size, size=s,
                       seed=stable_seed("bench_serve_autotune", "warm", s),
                       apps=APPS, patterns=PATTERNS, variant=variant,
                       shuffle=False)
        for s in SIZES
    ])
    timed = _interleave([
        build_workload(TIMED_REQUESTS // len(SIZES), size=s,
                       seed=stable_seed("bench_serve_autotune", "timed", s),
                       apps=APPS, patterns=PATTERNS, variant=variant,
                       shuffle=True)
        for s in SIZES
    ])
    return warmup, timed


def _run_policy(variant: str) -> dict:
    warmup, timed = _workloads(variant)
    # One worker, one request per batch: fully serial execution, so every
    # trial the tuner observes is an uncontended single-threaded timing and
    # the learned table is reproducible. (Parallel workers time-share the
    # interpreter, which contaminates trial samples with whatever the
    # sibling worker is compiling at that moment.)
    engine = ServeEngine(workers=1, batch_size=1, queue_depth=256,
                         autotune=(variant == "auto"))
    with engine:
        for r in engine.run(warmup):
            assert r.ok, f"warmup failed under {variant}: {r.error}"
        t0 = time.perf_counter()
        responses = engine.run(timed)
        elapsed = time.perf_counter() - t0
        errors = [r for r in responses if not r.ok]
        tuned = (engine.tuner.table() if variant == "auto" else [])
    assert not errors, f"{len(errors)} requests failed under {variant}"
    return {
        "variant": variant,
        "elapsed_s": elapsed,
        "throughput_rps": len(timed) / elapsed,
        "tuned": tuned,
    }


def test_serve_autotune(benchmark, report):
    results = {v: _run_policy(v) for v in STATIC_POLICIES}
    results["auto"] = benchmark.pedantic(
        lambda: _run_policy("auto"), rounds=1, iterations=1
    )

    static_rps = {v: results[v]["throughput_rps"] for v in STATIC_POLICIES}
    auto_rps = results["auto"]["throughput_rps"]
    best_static = max(static_rps, key=static_rps.get)
    worst_static = min(static_rps, key=static_rps.get)

    rows = [[v, f"{r['throughput_rps']:.1f}"]
            for v, r in results.items()]
    table = format_table(
        ["policy", "req/s"], rows,
        title=(f"serve-autotune: mixed {len(APPS)}x{len(PATTERNS)} workload, "
               f"sizes {'+'.join(map(str, SIZES))}, "
               f"{TIMED_REQUESTS} timed requests"),
    )
    learned = "\n".join(
        f"  {row['key'].short()}: G={row['model_gain']:.3f} "
        f"model={row['model_choice']} learned={row['committed']}"
        for row in results["auto"]["tuned"]
    )
    report("serve_autotune", table + "\nlearned table:\n" + learned, data={
        "static_rps": static_rps,
        "auto_rps": auto_rps,
        "best_static": best_static,
        "worst_static": worst_static,
    })

    # The adaptive engine serves each config with its learned winner, so it
    # must hold the best static policy's throughput (2% noise margin) and
    # clearly beat a uniformly wrong choice.
    assert auto_rps >= 0.98 * static_rps[best_static], (
        f"auto {auto_rps:.1f} rps < 0.98x best static "
        f"{best_static}={static_rps[best_static]:.1f} rps"
    )
    assert auto_rps > static_rps[worst_static], (
        f"auto {auto_rps:.1f} rps not above worst static "
        f"{worst_static}={static_rps[worst_static]:.1f} rps"
    )
