"""Border-check codegen tests (paper Listing 1).

A miniature kernel applies :func:`emit_axis_checks` to the coordinate
``tid - OFFSET`` and stores the mapped index; executing it on the simulator
must agree with the scalar golden model ``reference_index`` for every
pattern and every check-side combination.
"""

import numpy as np
import pytest

from repro.compiler.border import emit_axis_checks, instructions_per_side
from repro.dsl import Boundary, reference_index
from repro.gpu import GlobalMemory, LaunchConfig, Profiler, launch
from repro.ir import DataType, IRBuilder, Param, SpecialReg, verify

SIZE = 16
OFFSET = 24  # tid 0..63 -> coords -24..39: both sides exercised deeply

CHECKED = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


def build_mapper(boundary: Boundary, check_low: bool, check_high: bool):
    b = IRBuilder(f"map_{boundary.value}", [
        Param("out_ptr", DataType.U32, is_pointer=True),
        Param("valid_ptr", DataType.U32, is_pointer=True),
        Param("size", DataType.S32),
    ])
    b.new_block("entry")
    out = b.ld_param("out_ptr")
    vout = b.ld_param("valid_ptr")
    size = b.ld_param("size")
    tid = b.special(SpecialReg.TID_X)
    ctaid = b.special(SpecialReg.CTAID_X)
    ntid = b.special(SpecialReg.NTID_X)
    gid = b.mad(ctaid, ntid, tid)
    coord = b.sub(gid, OFFSET)
    mapped = emit_axis_checks(b, coord, size, boundary,
                              check_low=check_low, check_high=check_high)
    off = b.cvt(b.shl(gid, 2), DataType.U32)
    b.st(b.add(out, off, DataType.U32), mapped.coord)
    if mapped.valid is not None:
        flag = b.selp(mapped.valid, b.imm(1, DataType.S32), b.imm(0, DataType.S32))
    else:
        flag = b.mov(b.imm(1, DataType.S32))
    b.st(b.add(vout, off, DataType.U32), flag)
    b.exit()
    func = b.finish()
    verify(func)
    return func


def run_mapper(boundary, check_low, check_high):
    func = build_mapper(boundary, check_low, check_high)
    mem = GlobalMemory(1 << 14)
    out = mem.alloc(64 * 4)
    vout = mem.alloc(64 * 4)
    launch(func, LaunchConfig((2, 1), (32, 1)), mem,
           {"out_ptr": out, "valid_ptr": vout, "size": SIZE}, Profiler())
    mapped = mem.read_array(out, (64,), DataType.S32)
    valid = mem.read_array(vout, (64,), DataType.S32)
    return mapped, valid


def in_single_side_contract(boundary: Boundary, coord: int) -> bool:
    """A *single-sided* mirror check uses Listing 1's single reflection,
    valid for excursions up to one image size — which is what a one-sided
    region guarantees (the sanitizer proves it per geometry).  The
    both-sides mapping is total, and Clamp/Repeat/Constant are exact at any
    depth on either side."""
    if boundary is Boundary.MIRROR:
        return -SIZE <= coord < 2 * SIZE
    return True


class TestBorderMapping:
    @pytest.mark.parametrize("boundary", CHECKED)
    def test_both_sides_match_reference(self, boundary):
        """Every pattern's both-sides mapping is total: exact for every
        coordinate in -24..39, including mirror taps more than one image
        size past the edge (the bug this file regression-tests)."""
        mapped, valid = run_mapper(boundary, True, True)
        for gid in range(64):
            coord = gid - OFFSET
            ref = reference_index(coord, SIZE, boundary)
            if ref is None:  # CONSTANT out of bounds
                assert valid[gid] == 0, (boundary, coord)
                assert 0 <= mapped[gid] < SIZE  # clamped-safe address
            else:
                assert valid[gid] == 1
                assert mapped[gid] == ref, (boundary, coord, mapped[gid], ref)

    @pytest.mark.parametrize("boundary", CHECKED)
    def test_low_only(self, boundary):
        """With only the low check, high-side coords pass through unmapped
        (the L-region contract: its windows can never cross the right edge)."""
        mapped, valid = run_mapper(boundary, True, False)
        for gid in range(64):
            coord = gid - OFFSET
            if not in_single_side_contract(boundary, coord):
                continue
            if coord < 0:
                ref = reference_index(coord, SIZE, boundary)
                if ref is None:
                    assert valid[gid] == 0
                else:
                    assert mapped[gid] == ref
            elif 0 <= coord:
                # includes coords >= SIZE: untouched by the low-only variant
                assert mapped[gid] == coord
                if boundary is Boundary.CONSTANT and coord < SIZE:
                    assert valid[gid] == 1

    @pytest.mark.parametrize("boundary", CHECKED)
    def test_high_only(self, boundary):
        mapped, _ = run_mapper(boundary, False, True)
        for gid in range(64):
            coord = gid - OFFSET
            if not in_single_side_contract(boundary, coord):
                continue
            if coord >= SIZE:
                ref = reference_index(coord, SIZE, boundary)
                if ref is not None:
                    assert mapped[gid] == ref
            elif coord < SIZE:
                assert mapped[gid] == coord

    def test_no_checks_is_identity_and_free(self):
        b = IRBuilder("noop", [Param("size", DataType.S32)])
        b.new_block("entry")
        size = b.ld_param("size")
        tid = b.special(SpecialReg.TID_X)
        before = b.function.static_size()
        res = emit_axis_checks(b, tid, size, Boundary.CLAMP,
                               check_low=False, check_high=False)
        assert res.coord is tid
        assert b.function.static_size() == before  # zero instructions emitted

    def test_undefined_emits_nothing(self):
        b = IRBuilder("undef", [Param("size", DataType.S32)])
        b.new_block("entry")
        size = b.ld_param("size")
        tid = b.special(SpecialReg.TID_X)
        before = b.function.static_size()
        res = emit_axis_checks(b, tid, size, Boundary.UNDEFINED,
                               check_low=True, check_high=True)
        assert res.coord is tid
        assert b.function.static_size() == before

    def test_check_instructions_tagged(self):
        func = build_mapper(Boundary.MIRROR, True, True)
        checks = [i for i in func.instructions() if i.role == "check"]
        assert len(checks) >= 6  # setp + refl + selp per side

    def test_repeat_emits_loops(self):
        from repro.ir import has_loops

        func = build_mapper(Boundary.REPEAT, True, True)
        assert has_loops(func)
        func2 = build_mapper(Boundary.CLAMP, True, True)
        assert not has_loops(func2)

    def test_static_cost_ordering(self):
        """Repeat is the costliest pattern, clamp the cheapest — the static
        estimates must respect the ordering the paper observes."""
        assert instructions_per_side(Boundary.CLAMP) < instructions_per_side(
            Boundary.MIRROR
        )
        assert instructions_per_side(Boundary.MIRROR) <= instructions_per_side(
            Boundary.REPEAT
        )
        assert instructions_per_side(Boundary.UNDEFINED) == 0


class TestRepeatDeepWrap:
    def test_multiple_iterations(self):
        """Repeat's while-loop must handle coords several image-widths out
        (paper: 'required ... when small images are computed using a large
        filter window')."""
        mapped, _ = run_mapper(Boundary.REPEAT, True, True)
        # coord -24 with SIZE 16 needs two += iterations: -24+16+16 = 8
        gid = 0
        assert mapped[gid] == (-24) % SIZE == 8


class TestMirrorDeepWrap:
    def test_deep_excursions(self):
        """Regression for the out-of-bounds mirror bug: a tap more than one
        image size past the edge must reflect back in-bounds.  A single
        reflection per side maps -24 (SIZE 16) to 23, then to 8 — but -7
        with SIZE 3 would go 6 -> -1, out of bounds; the total triangular
        mapping handles any depth."""
        mapped, _ = run_mapper(Boundary.MIRROR, True, True)
        assert mapped.min() >= 0 and mapped.max() < SIZE
        for gid in (0, 1, 62, 63):  # deepest excursions on both sides
            coord = gid - OFFSET
            assert mapped[gid] == reference_index(coord, SIZE, Boundary.MIRROR)
