"""Cross-variant differential verification and shadow-OOB instrumentation.

These tests exercise the dynamic half of :mod:`repro.sanitize`: the
adversarial corpus runner (tiny images x windows wider than the image, all
four border patterns, every executor vs the pad-based reference), the deep
mirror-wrap regression that motivated the total-mapping fix, and the canary
machinery that catches coordinate escapes in the vectorized evaluator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Variant, trace_kernel
from repro.dsl import Boundary, Pipeline
from repro.filters.reference import correlate
from repro.runtime import run_kernel_vectorized, run_pipeline_simt
from repro.sanitize import (
    check_pipeline_simt,
    check_pipeline_vectorized,
    make_chain_pipeline,
    make_conv_pipeline,
    run_differential,
    run_pipeline_differential,
)
from repro.sanitize.shadow import _CanaryArray
from tests.conftest import ALL_BOUNDARIES, make_conv_kernel

PATTERNS = [Boundary.CLAMP, Boundary.MIRROR, Boundary.REPEAT, Boundary.CONSTANT]


def _mask(hy: int, hx: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.25, 1.0, (2 * hy + 1, 2 * hx + 1)).astype(np.float32)


class TestDifferentialHarness:
    def test_reduced_corpus_bit_exact(self):
        report = run_differential(
            sizes=(1, 2, 3),
            half_extents=(1, 2, 7),
            patterns=PATTERNS,
            simt_variants=(Variant.NAIVE, Variant.ISP),
            vectorized_variants=("naive", "isp"),
            shadow=False,
        )
        assert report.ok, report.summary()
        assert report.cases > 0 and report.comparisons > report.cases

    def test_shadow_corpus_clean(self):
        # Shadow-instrumented run: same bit-exactness, plus redzone/canary
        # checks armed on every execution.
        report = run_differential(
            sizes=(3,),
            half_extents=(2, 7),
            patterns=(Boundary.MIRROR, Boundary.REPEAT),
            simt_variants=(Variant.ISP,),
            vectorized_variants=("isp",),
            shadow=True,
        )
        assert report.ok, report.summary()


class TestPipelineDifferential:
    def test_reduced_corpus_bit_exact(self):
        report = run_pipeline_differential(
            sizes=(1, 2, 5),
            chain_extents=((1,), (2, 1), (99,)),
            patterns=PATTERNS,
            tile_shapes=((None, None), (1, None), (2, 5)),
            apps=("sobel",),
        )
        assert report.ok, report.summary() + "".join(
            f"\n  {m}" for m in report.mismatches
        )
        assert report.cases > 0 and report.comparisons > report.cases

    def test_chain_pipeline_matches_folded_reference(self):
        rng = np.random.default_rng(5)
        masks = [_mask(1, 1, seed=2), _mask(2, 2, seed=3)]
        src = rng.uniform(-1.0, 1.0, (4, 4)).astype(np.float32)
        ref = src
        for m in masks:
            ref = correlate(ref, m, Boundary.REPEAT, 0.0)
        pipe = make_chain_pipeline(4, 4, Boundary.REPEAT, masks)
        from repro.runtime import run_pipeline_vectorized

        out = run_pipeline_vectorized(pipe, {"inp": src}, variant="isp")["out"]
        assert np.array_equal(out, ref)

    def test_chain_needs_a_mask(self):
        with pytest.raises(ValueError, match="at least one mask"):
            make_chain_pipeline(4, 4, Boundary.CLAMP, [])

    def test_detects_seeded_corruption(self, monkeypatch):
        """The harness is live: a fused executor that corrupts one pixel on
        non-trivial images must surface as a recorded mismatch, not a pass."""
        import repro.sanitize.differential as diff_mod
        from repro.runtime.fused import run_pipeline_fused as real_fused

        def corrupted(pipe, inputs=None, **kwargs):
            out = real_fused(pipe, inputs, **kwargs)
            if out.shape[-1] >= 2:
                out = out.copy()
                out[..., 0, 0] += np.float32(1.0)
            return out

        monkeypatch.setattr(
            "repro.runtime.fused.run_pipeline_fused", corrupted
        )
        report = diff_mod.run_pipeline_differential(
            sizes=(3,), chain_extents=((1,),),
            patterns=(Boundary.CLAMP,),
            tile_shapes=((None, None),), apps=(),
        )
        assert not report.ok
        assert any("fused" in m.path for m in report.mismatches)


class TestMirrorDeepWrap:
    """Window far wider than the image: one reflection is not enough.

    3x3 image with half-extent 7 reaches coordinates down to -7; the old
    single-reflection mapping produced 6 (still out of bounds) and numpy's
    wrap-around made it alias pixel -1.  All executors must now agree with
    the reference bit-for-bit.
    """

    SIZE, HX = 3, 7

    def _case(self):
        rng = np.random.default_rng(20210521)
        src = rng.uniform(-1.0, 1.0, (self.SIZE, self.SIZE)).astype(np.float32)
        mask = _mask(self.HX, self.HX)
        ref = correlate(src, mask, Boundary.MIRROR, 0.0)
        return src, mask, ref

    def test_simt_isp_bit_exact(self):
        src, mask, ref = self._case()
        kernel = make_conv_kernel(self.SIZE, self.SIZE, Boundary.MIRROR, mask)
        out = run_pipeline_simt(
            Pipeline("deepwrap", [kernel]), variant=Variant.ISP,
            block=(8, 4), inputs={"inp": src},
        ).output
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("variant", ["naive", "isp"])
    def test_vectorized_bit_exact(self, variant):
        src, mask, ref = self._case()
        desc = trace_kernel(
            make_conv_kernel(self.SIZE, self.SIZE, Boundary.MIRROR, mask)
        )
        out = run_kernel_vectorized(desc, {"inp": src}, variant=variant)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("pattern", ALL_BOUNDARIES)
    def test_all_patterns_survive_deep_windows(self, pattern):
        rng = np.random.default_rng(3)
        src = rng.uniform(-1.0, 1.0, (2, 5)).astype(np.float32)
        mask = _mask(5, 5, seed=11)
        ref = correlate(src, mask, pattern, 1.25)
        desc = trace_kernel(make_conv_kernel(5, 2, pattern, mask, 1.25))
        out = run_kernel_vectorized(desc, {"inp": src}, variant="isp")
        assert np.array_equal(out, ref), pattern


@st.composite
def adversarial_case(draw):
    width = draw(st.integers(1, 8))
    height = draw(st.integers(1, 8))
    # Half-extents beyond 2*size+1 add no new residues mod 2*size.
    hx = draw(st.integers(1, 2 * width + 1))
    hy = draw(st.integers(1, 2 * height + 1))
    pattern = draw(st.sampled_from(PATTERNS))
    constant = draw(st.floats(min_value=-1.0, max_value=1.0, width=32))
    seed = draw(st.integers(0, 2**31 - 1))
    return width, height, hx, hy, pattern, constant, seed


class TestAdversarialProperties:
    @settings(max_examples=30, deadline=None)
    @given(case=adversarial_case())
    def test_vectorized_matches_reference(self, case):
        width, height, hx, hy, pattern, constant, seed = case
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1.0, 1.0, (height, width)).astype(np.float32)
        mask = rng.uniform(0.25, 1.0, (2 * hy + 1, 2 * hx + 1)).astype(np.float32)
        ref = correlate(src, mask, pattern, constant)
        desc = trace_kernel(make_conv_kernel(width, height, pattern, mask, constant))
        for variant in ("naive", "isp"):
            out = run_kernel_vectorized(desc, {"inp": src}, variant=variant)
            assert np.array_equal(out, ref), (pattern, variant)

    @settings(max_examples=8, deadline=None)
    @given(case=adversarial_case())
    def test_simt_matches_reference(self, case):
        width, height, hx, hy, pattern, constant, seed = case
        hx, hy = min(hx, 5), min(hy, 5)  # keep the simulation tractable
        rng = np.random.default_rng(seed)
        src = rng.uniform(-1.0, 1.0, (height, width)).astype(np.float32)
        mask = rng.uniform(0.25, 1.0, (2 * hy + 1, 2 * hx + 1)).astype(np.float32)
        ref = correlate(src, mask, pattern, constant)
        kernel = make_conv_kernel(width, height, pattern, mask, constant)
        out = run_pipeline_simt(
            Pipeline("adv", [kernel]), variant=Variant.ISP, block=(8, 2),
            inputs={"inp": src},
        ).output
        assert np.array_equal(out, ref), pattern


class TestCanaryMachinery:
    def test_canary_array_translates_coordinates(self):
        base = np.arange(9, dtype=np.float32).reshape(3, 3)
        arr = _CanaryArray(base, pad=4)
        assert arr.shape == (3, 3)
        # Original coordinates resolve to original pixels.
        got = arr[np.ix_(np.array([0, 2]), np.array([1, 1]))]
        assert np.array_equal(got, base[np.ix_([0, 2], [1, 1])])
        # Slices used by the Body fast path translate too.
        assert np.array_equal(arr[slice(1, 3), slice(0, 2)], base[1:3, 0:2])
        # Escaped coordinates land in the NaN ring instead of wrapping.
        ring = arr[np.ix_(np.array([-1]), np.array([0]))]
        assert np.isnan(ring).all()

    def test_clean_pipeline_has_no_violations(self):
        pipe = make_conv_pipeline(5, 5, Boundary.MIRROR, _mask(3, 3))
        rng = np.random.default_rng(1)
        inputs = {"inp": rng.random((5, 5)).astype(np.float32)}
        for variant in ("naive", "isp"):
            report = check_pipeline_vectorized(pipe, variant=variant, inputs=inputs)
            assert report.ok, report.violations
        simt = check_pipeline_simt(pipe, variant=Variant.ISP, block=(8, 4),
                                   inputs=inputs)
        assert simt.ok, simt.violations

    def test_nan_input_rejected(self):
        pipe = make_conv_pipeline(4, 4, Boundary.CLAMP, _mask(1, 1))
        poisoned = np.full((4, 4), np.nan, dtype=np.float32)
        with pytest.raises(AssertionError, match="NaN-free"):
            check_pipeline_vectorized(pipe, inputs={"inp": poisoned})
