"""Laplacian edge detector — 5x5 single-kernel filter (paper Section VI)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
)

#: 5x5 Laplacian (discrete LoG approximation, sums to 0).
LAPLACE_MASK = np.array(
    [
        [-1, -1, -1, -1, -1],
        [-1, -1, -1, -1, -1],
        [-1, -1, 24, -1, -1],
        [-1, -1, -1, -1, -1],
        [-1, -1, -1, -1, -1],
    ],
    dtype=np.float32,
)


class LaplaceKernel(Kernel):
    def __init__(self, iter_space: IterationSpace, acc: Accessor, mask: Mask):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask

    @property
    def name(self) -> str:
        return "laplace"

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def build_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    constant: float = 0.0,
    input_image: Optional[Image] = None,
) -> Pipeline:
    inp = input_image or Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    kernel = LaplaceKernel(IterationSpace(out), acc, Mask(LAPLACE_MASK))
    return Pipeline("laplace", [kernel])
