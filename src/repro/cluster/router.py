"""Consistent-hash router: content digests -> shard slots, failover order.

Placement is the whole point of the cluster: a :class:`~repro.serve.cache.
PlanCache` and an :class:`~repro.serve.autotune.AutoTuner` are only fast
when the same workload keeps landing on the same engine. The router keys
placement on the same identity the caches key on — the content digest of the
workload's :class:`KernelDescription` chain (``combined_digest``), reached
via the cheap ``trace_app`` step and memoized per request signature so the
per-request cost is one dict lookup.

Membership is a set of stable *slot names* (``"shard-0"``...), not
addresses: a replacement process for a dead slot inherits the slot name and
therefore the exact keyspace (and, via the warm-start tier, the dead
shard's learned autotune table). :func:`~repro.cluster.protocol.
rendezvous_order` gives every digest a stable preference list over slots;
the router serves from the first *live* entry, so killing one shard moves
only that shard's keys and every other key stays where its caches are warm.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from ..serve.plan import combined_digest, trace_app
from .protocol import rendezvous_order


class NoLiveShards(RuntimeError):
    """Every slot in the table is marked dead."""


class RoutingTable:
    """Thread-safe slot -> address map with liveness marks.

    The gateway's failover path and the manager's monitor both mutate this
    (mark_dead on a connection error, set_addr on a respawn), so every read
    takes a consistent snapshot under the lock. ``generation`` increments on
    each mutation — cheap staleness check for callers that cache a view.
    """

    def __init__(self, addrs: Optional[dict[str, tuple[str, int]]] = None):
        self._lock = threading.Lock()
        self._addrs: dict[str, tuple[str, int]] = dict(addrs or {})
        self._dead: set[str] = set()
        self.generation = 0

    def slots(self) -> list[str]:
        with self._lock:
            return sorted(self._addrs)

    def live_slots(self) -> list[str]:
        with self._lock:
            return sorted(s for s in self._addrs if s not in self._dead)

    def addr(self, slot: str) -> tuple[str, int]:
        with self._lock:
            return self._addrs[slot]

    def set_addr(self, slot: str, addr: tuple[str, int]) -> None:
        """Register (or re-register) a slot; a respawned shard revives here."""
        with self._lock:
            self._addrs[slot] = tuple(addr)
            self._dead.discard(slot)
            self.generation += 1

    def mark_dead(self, slot: str) -> None:
        with self._lock:
            if slot in self._addrs and slot not in self._dead:
                self._dead.add(slot)
                self.generation += 1

    def mark_live(self, slot: str) -> None:
        with self._lock:
            if slot in self._dead:
                self._dead.discard(slot)
                self.generation += 1

    def is_live(self, slot: str) -> bool:
        with self._lock:
            return slot in self._addrs and slot not in self._dead

    def remove(self, slot: str) -> None:
        with self._lock:
            self._addrs.pop(slot, None)
            self._dead.discard(slot)
            self.generation += 1


class Router:
    """Maps one request signature to its shard preference order.

    The routing key is the *content digest* of the workload — two apps whose
    kernel chains trace to identical descriptions share a digest and
    therefore a shard (and that shard's cached plan serves both). Tracing is
    pure and depends only on ``(app, pattern, w, h, constant)``, so digests
    are memoized on that cheap signature; the memo is append-only and tiny
    (one entry per distinct workload shape, the same cardinality as the plan
    cache keyspace itself).
    """

    def __init__(self, table: RoutingTable):
        self.table = table
        self._digests: dict[tuple, str] = {}
        self._digest_lock = threading.Lock()

    def digest_for(self, app: str, pattern: str, width: int, height: int,
                   constant: float = 0.0) -> str:
        sig = (app, pattern, width, height, constant)
        with self._digest_lock:
            cached = self._digests.get(sig)
        if cached is not None:
            return cached
        descs = trace_app(app, pattern, width, height, constant)
        digest = combined_digest(descs)
        with self._digest_lock:
            self._digests[sig] = digest
        return digest

    def preference(self, digest: str) -> list[str]:
        """All slots, most-preferred first (ignores liveness — the failover
        loop walks this list and skips dead entries itself)."""
        slots = self.table.slots()
        if not slots:
            raise NoLiveShards("routing table is empty")
        return rendezvous_order(digest, slots)

    def route(self, app: str, pattern: str, width: int, height: int,
              constant: float = 0.0) -> list[str]:
        """Live slots for one request signature, most-preferred first."""
        digest = self.digest_for(app, pattern, width, height, constant)
        order = self.preference(digest)
        live = [s for s in order if self.table.is_live(s)]
        if not live:
            raise NoLiveShards(
                f"no live shard for digest {digest[:12]} "
                f"(table has {len(order)} slots, all dead)"
            )
        return live

    def placement(self, workloads: Sequence[tuple]) -> dict[str, list[tuple]]:
        """Primary placement of a workload list (for balance inspection):
        {slot: [workload, ...]} using each workload's first live choice."""
        out: dict[str, list[tuple]] = {s: [] for s in self.table.slots()}
        for w in workloads:
            out[self.route(*w)[0]].append(w)
        return out
