"""Vectorized host executor: region-sliced NumPy evaluation of DSL kernels.

This is the second execution path of DESIGN.md: it evaluates the *same*
kernel description the compiler lowers, but with whole-array NumPy operations
on the host. Two variants mirror the GPU code shapes:

* ``naive`` — every tap's coordinates go through the full border mapping
  (``np.clip`` / modulo / reflection over the entire coordinate range), the
  host analogue of executing the checks for every pixel;
* ``isp`` — the iteration space is partitioned at *pixel* granularity into
  the nine regions (the CPU partitioning of paper Section III-C, Eq. 1); the
  Body region evaluates with pure slicing — no index mapping at all — and
  only the thin border strips pay for the mapping;
* ``isp_warp`` — the nine regions with warp-aligned x cuts (paper
  Listing 5's granularity);
* ``prepad`` — the raw-speed tier: :func:`repro.runtime.make_border
  .make_border` materializes the apron once, then the single check-free
  Body evaluator runs over the whole padded image with offset coordinates.
  The copy is O(area) but amortizes across taps, pipeline stages (one
  ``pad_cache`` shared across calls) and repeated same-image requests —
  exactly the serve workload where the paper's "padding is costly" framing
  (Section I) inverts.

Because the border strips are O(perimeter) while the body is O(area), the
host speedup of ``isp`` over ``naive`` grows with image size exactly like the
paper's Figure 3 predicts, which makes this executor a genuinely *measured*
(wall-clock) reproduction of the ISP effect; ``benchmarks/
bench_wallclock_vectorized.py`` times it with pytest-benchmark.

Every variant is batch-aware: images may carry leading axes (``(N, H, W)``),
which evaluate in one NumPy call per tap — the kernel-level batching the
serve engine stacks same-signature requests into.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

import numpy as np

from ..compiler.frontend import KernelDescription, trace_kernel
from ..dsl.boundary import Boundary
from ..faults import core as _faults
from ..faults.core import FaultError
from ..trace import core as _trace_core
from ..dsl.expr import BinOp, Const, Expr, PixelAccess, UnOp
from ..dsl.pipeline import Pipeline

_UN_FUNCS = {
    "neg": lambda x: -x,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "rsqrt": lambda x: np.float32(1.0) / np.sqrt(x),
    "rcp": lambda x: np.float32(1.0) / x,
    "exp": np.exp,
    "exp2": np.exp2,
    "log": np.log,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
}

_BIN_FUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "min": np.minimum,
    "max": np.maximum,
}


@dataclasses.dataclass(frozen=True)
class _RegionRect:
    """Output-pixel rectangle [x0, x1) x [y0, y1) with its check sides."""

    x0: int
    x1: int
    y0: int
    y1: int
    checks: frozenset[str]

    @property
    def empty(self) -> bool:
        return self.x1 <= self.x0 or self.y1 <= self.y0


#: Default warp width (NVIDIA) — the x-granularity of the warp-grained
#: re-routing in paper Listing 5. Callers with a device in hand pass
#: ``device.warp_size`` instead (64 on the wave64 AMD-like zoo entries).
WARP_WIDTH = 32

#: Every vectorized code shape this executor can run.
VECTORIZED_VARIANTS = ("naive", "isp", "isp_warp", "prepad")


def degenerate_geometry(width: int, height: int, hx: int, hy: int) -> bool:
    """Pixel-granularity degenerate-geometry predicate, shared by every
    caller that must agree on when the nine-region scheme is expressible.

    An axis is degenerate when some pixel needs checks on *both* of its
    sides: pixel ``x`` needs left checks iff ``x < hx`` and right checks iff
    ``x >= width - hx``, so a both-sided pixel exists iff
    ``width - hx < hx``, i.e. ``width < 2*hx``. The boundary case
    ``width == 2*hx`` is *not* degenerate — the Body strip is empty but
    every remaining strip is single-sided, which the region evaluators
    handle exactly (pinned by the ``w in {2hx-1, 2hx, 2hx+1}`` edge tests).
    This is precisely :class:`repro.compiler.regions.RegionGeometry`'s
    ``degenerate`` at block granularity ``(1, 1)``, which is what makes the
    two layers' fallback conditions agree (asserted by
    ``tests/test_runtime_vectorized.py``); the compiler's *block-granular*
    condition is strictly more conservative for real block shapes.
    """
    return (hx > 0 and width < 2 * hx) or (hy > 0 and height < 2 * hy)


def _axis_strips(
    lo_cut: int, hi_cut: int, size: int, lo_check: str, hi_check: str
) -> list[tuple[int, int, frozenset[str]]]:
    """Three strips [0,lo_cut)/[lo_cut,hi_cut)/[hi_cut,size) with their checks.

    ``lo_cut > hi_cut`` (over-wide rounding) collapses the axis to a single
    both-checked strip — always safe, because checking a side a coordinate
    never crosses is the identity mapping.
    """
    if lo_cut > hi_cut:
        return [(0, size, frozenset({lo_check, hi_check}))]
    return [
        (0, lo_cut, frozenset({lo_check})),
        (lo_cut, hi_cut, frozenset()),
        (hi_cut, size, frozenset({hi_check})),
    ]


def _regions_from_cuts(
    xs: list[tuple[int, int, frozenset[str]]],
    ys: list[tuple[int, int, frozenset[str]]],
) -> list[_RegionRect]:
    rects = []
    for y0, y1, cy in ys:
        for x0, x1, cx in xs:
            rect = _RegionRect(x0, x1, y0, y1, cx | cy)
            if not rect.empty:
                rects.append(rect)
    return rects


def _pixel_regions(width: int, height: int, hx: int, hy: int) -> list[_RegionRect]:
    """Nine pixel-granularity regions (paper Eq. 1 generalized to all sides).

    Requires non-degenerate geometry per :func:`degenerate_geometry` (the
    pixel-granularity analogue of the compiler's block-granular fallback);
    the caller falls back to the naive single region otherwise.
    """
    if degenerate_geometry(width, height, hx, hy):
        raise ValueError("degenerate pixel-region geometry")
    xs = _axis_strips(hx, width - hx, width, "left", "right")
    ys = _axis_strips(hy, height - hy, height, "top", "bottom")
    return _regions_from_cuts(xs, ys)


def _warp_regions(
    width: int, height: int, hx: int, hy: int, warp: int = WARP_WIDTH
) -> list[_RegionRect]:
    """Warp-grained partitioning (the host analogue of paper Listing 5).

    The x-axis cuts are rounded outward to warp multiples — a warp is the
    granularity at which the GPU dispatch re-routes work, so the L/R strips
    widen to whole warps (their extra pixels run harmless identity checks)
    while the Body stays check-free and every strip spans whole warps. The
    y-axis keeps pixel granularity, as warps are x-contiguous. Compared to
    pixel-grained ISP this trades a slightly larger checked area for fewer,
    aligned region evaluations — the same trade the paper's warp-grained
    kernels make, which is what gives the autotuner a real three-way choice.
    """
    if degenerate_geometry(width, height, hx, hy):
        raise ValueError("degenerate pixel-region geometry")
    xl = -(-hx // warp) * warp if hx > 0 else 0
    xr = ((width - hx) // warp) * warp if hx > 0 else width
    xs = _axis_strips(xl, xr, width, "left", "right")
    ys = _axis_strips(hy, height - hy, height, "top", "bottom")
    return _regions_from_cuts(xs, ys)


def _map_axis(
    coords: np.ndarray,
    size: int,
    boundary: Boundary,
    check_low: bool,
    check_high: bool,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Vectorized analogue of :func:`repro.compiler.border.emit_axis_checks`.

    Returns (mapped coordinates, validity mask or None).
    """
    if not (check_low or check_high) or boundary is Boundary.UNDEFINED:
        return coords, None
    if boundary is Boundary.CLAMP:
        if check_low and check_high:
            return np.clip(coords, 0, size - 1), None
        if check_low:
            return np.maximum(coords, 0), None
        return np.minimum(coords, size - 1), None
    if boundary is Boundary.MIRROR:
        c = coords
        need_total = check_low and check_high
        if not need_total and c.size:
            # The per-tap sign filter can leave only one side checked even
            # though the tap reaches more than one image-size past the edge
            # (degenerate geometry); a single reflection would then exit the
            # opposite side, so promote to the total mapping.
            if check_low and (c.min() < -size or c.max() >= size):
                need_total = True
            if check_high and (c.max() >= 2 * size or c.min() < 0):
                need_total = True
        if need_total:
            # Total triangular reflection, bit-identical to the IR lowering
            # in ``emit_axis_checks``: floored mod by the period, then
            # reflect the upper half.  A single reflection per side is wrong
            # for taps more than one image-size past the edge (c=-7, size=3
            # -> 6 -> -1, which fancy indexing silently wraps).
            r = np.mod(c, 2 * size)
            return np.where(r < size, r, 2 * size - 1 - r), None
        if check_low:
            c = np.where(c < 0, -c - 1, c)
        if check_high:
            c = np.where(c >= size, 2 * size - 1 - c, c)
        return c, None
    if boundary is Boundary.REPEAT:
        return np.mod(coords, size), None
    if boundary is Boundary.CONSTANT:
        valid = np.ones(coords.shape, dtype=bool)
        c = coords
        if check_low:
            valid &= c >= 0
            c = np.maximum(c, 0)
        if check_high:
            valid &= c < size
            c = np.minimum(c, size - 1)
        return c, valid
    raise AssertionError(f"unhandled boundary {boundary}")


class _RegionEvaluator:
    """Evaluates the expression tree for one output region."""

    def __init__(
        self,
        desc: KernelDescription,
        images: dict[str, np.ndarray],
        rect: _RegionRect,
    ):
        self.desc = desc
        self.images = images
        self.rect = rect
        self._memo: dict[int, np.ndarray] = {}

    def eval(self, expr: Expr) -> np.ndarray:
        # Iterative post-order evaluation: a convolution over a large window
        # is one add-chain as deep as the tap count, which overflows Python's
        # recursion limit exactly in the small-image / large-window corner
        # the border tests care about.
        memo = self._memo
        stack = [expr]
        while stack:
            node = stack[-1]
            if id(node) in memo:
                stack.pop()
                continue
            if isinstance(node, BinOp):
                deps = (node.lhs, node.rhs)
            elif isinstance(node, UnOp):
                deps = (node.operand,)
            else:
                deps = ()
            pending = [d for d in deps if id(d) not in memo]
            if pending:
                stack.extend(pending)
                continue
            memo[id(node)] = self._eval_node(node)
            stack.pop()
        return memo[id(expr)]

    def _eval_node(self, expr: Expr) -> np.ndarray:
        """Evaluate one node whose children are already memoized."""
        if isinstance(expr, Const):
            return np.float32(expr.value)
        if isinstance(expr, BinOp):
            lhs, rhs = self._memo[id(expr.lhs)], self._memo[id(expr.rhs)]
            return _BIN_FUNCS[expr.op](lhs, rhs, dtype=np.float32)
        if isinstance(expr, UnOp):
            src = self._memo[id(expr.operand)]
            return _UN_FUNCS[expr.op](src).astype(np.float32, copy=False)
        if isinstance(expr, PixelAccess):
            return self._eval_access(expr)
        raise TypeError(f"cannot evaluate {expr!r}")

    def _eval_access(self, access: PixelAccess) -> np.ndarray:
        rect = self.rect
        img = self.images[access.accessor.image.name]
        h, w = img.shape[-2:]
        boundary = access.accessor.boundary

        check_left = "left" in rect.checks and access.dx < 0
        check_right = "right" in rect.checks and access.dx > 0
        check_top = "top" in rect.checks and access.dy < 0
        check_bottom = "bottom" in rect.checks and access.dy > 0

        if not any((check_left, check_right, check_top, check_bottom)):
            # Body fast path: a pure slice — the host analogue of the
            # check-free Body region code. The ellipsis carries any leading
            # batch axes through untouched.
            return img[
                ...,
                rect.y0 + access.dy : rect.y1 + access.dy,
                rect.x0 + access.dx : rect.x1 + access.dx,
            ]

        xs = np.arange(rect.x0 + access.dx, rect.x1 + access.dx)
        ys = np.arange(rect.y0 + access.dy, rect.y1 + access.dy)
        xs, vx = _map_axis(xs, w, boundary, check_left, check_right)
        ys, vy = _map_axis(ys, h, boundary, check_top, check_bottom)
        if boundary is not Boundary.UNDEFINED:
            # A mapping applied on one side must never push the coordinate
            # out the *opposite* side, and an axis the region does not check
            # must already be in bounds — fancy indexing would silently wrap
            # a violation to the wrong pixel instead of failing.
            assert xs.size == 0 or (xs.min() >= 0 and xs.max() < w), (
                f"{boundary.value} x-mapping out of bounds for {access!r}"
            )
            assert ys.size == 0 or (ys.min() >= 0 and ys.max() < h), (
                f"{boundary.value} y-mapping out of bounds for {access!r}"
            )
        values = img[..., ys[:, None], xs[None, :]]
        if vx is not None or vy is not None:
            valid = np.ones((ys.size, xs.size), dtype=bool)
            if vy is not None:
                valid &= vy[:, None]
            if vx is not None:
                valid &= vx[None, :]
            values = np.where(
                valid, values, np.float32(access.accessor.constant)
            ).astype(np.float32)
        return values


class _PrepadEvaluator(_RegionEvaluator):
    """The raw-speed tier's evaluator: every access is a pure slice into a
    pre-padded buffer at offset ``(hx, hy)`` — the check-free Body code
    shape applied to the *whole* image, which is only sound because
    :func:`~repro.runtime.make_border.make_border` already materialized
    every pattern's mapping into the apron.
    """

    def __init__(
        self,
        desc: KernelDescription,
        pads: dict,
        rect: _RegionRect,
    ):
        super().__init__(desc, {}, rect)
        self.pads = pads
        self.hx, self.hy = desc.extent

    def _eval_access(self, access: PixelAccess) -> np.ndarray:
        acc = access.accessor
        img = self.pads[(acc.image.name, acc.boundary.value,
                         float(acc.constant))]
        rect = self.rect
        return img[
            ...,
            rect.y0 + access.dy + self.hy : rect.y1 + access.dy + self.hy,
            rect.x0 + access.dx + self.hx : rect.x1 + access.dx + self.hx,
        ]


def _split_rows(rects: list[_RegionRect], tile_rows: int) -> list[_RegionRect]:
    """Split tall rectangles into row bands of at most ``tile_rows`` rows.

    The checks set of a band equals its parent's (checks depend only on
    which true image borders a rectangle touches, and coordinates stay
    absolute), so banding never changes results — it only bounds the peak
    temporary-array footprint, which is what lets a serve worker stream a
    large request instead of materializing whole-image intermediates per tap.
    """
    if tile_rows <= 0:
        raise ValueError("tile_rows must be positive")
    out = []
    for rect in rects:
        for y0 in range(rect.y0, rect.y1, tile_rows):
            out.append(
                _RegionRect(
                    rect.x0, rect.x1, y0, min(y0 + tile_rows, rect.y1), rect.checks
                )
            )
    return out


def _lead_shape(
    desc: KernelDescription, images: dict[str, np.ndarray]
) -> tuple[int, ...]:
    """Common leading (batch) shape of every accessed input.

    Plain single-image execution has the empty leading shape; an
    ``(N, H, W)`` stack leads with ``(N,)``. Mixed leading shapes across
    inputs are rejected — one kernel call is one batch.
    """
    lead: Optional[tuple[int, ...]] = None
    for acc in desc.accessors:
        img = images[acc.image.name]
        # rank via shape, not .ndim: the sanitizer's canary wrappers are
        # duck-typed images exposing only shape/__getitem__
        if len(img.shape) < 2:
            raise ValueError(
                f"input {acc.image.name!r} must be (..., H, W), "
                f"got shape {img.shape}"
            )
        if lead is None:
            lead = img.shape[:-2]
        elif img.shape[:-2] != lead:
            raise ValueError(
                f"inconsistent batch shapes across inputs: {lead} vs "
                f"{img.shape[:-2]} for {acc.image.name!r}"
            )
    return lead if lead is not None else ()


def run_kernel_vectorized(
    desc: KernelDescription,
    images: dict[str, np.ndarray],
    *,
    variant: str = "isp",
    tile_rows: Optional[int] = None,
    pad_cache: Optional[dict] = None,
    warp_width: int = WARP_WIDTH,
) -> np.ndarray:
    """Evaluate one kernel over its full iteration space.

    ``variant`` is ``"naive"`` (single region, full checks), ``"isp"``
    (nine pixel-granularity regions, Body check-free), ``"isp_warp"``
    (nine regions with warp-aligned x cuts) or ``"prepad"`` (materialize
    each input's border once via :func:`repro.runtime.make_border
    .make_border`, then run the single check-free Body evaluator over the
    whole padded image with offset coordinates). ``tile_rows`` caps the
    height of any evaluated rectangle (memory-bounded streaming for large
    images); ``None`` evaluates each region in one shot.

    Inputs may carry leading batch axes — ``(N, H, W)`` stacks evaluate
    in one call and produce an ``(N, H, W)`` output (kernel-level
    batching). ``pad_cache``, when given, lets ``prepad`` reuse padded
    buffers across calls on the same source arrays (see
    :func:`repro.runtime.make_border.padded_for`); callers that loop over
    taps/stages/requests on one image pay the gather exactly once.
    ``warp_width`` sets the ``isp_warp`` x-cut granularity — the active
    device's warp/wavefront size.
    """
    trace_ctx = None
    if _trace_core._current is not None:
        trace_ctx = _trace_core.current_context()
    t_start = time.perf_counter() if trace_ctx is not None else 0.0
    if _faults._current is not None:
        # Fault point: per-kernel vectorized evaluation — "latency" models a
        # slow co-tenant, "error" a failed evaluation the engine must retry
        # or surface as a typed failure.
        act = _faults.fire("runtime.vectorized.kernel",
                           kernel=desc.name, variant=variant)
        if act is not None:
            if act.kind == "latency":
                act.sleep()
            else:
                raise FaultError("runtime.vectorized.kernel", act.kind)
    h, w = desc.height, desc.width
    hx, hy = desc.extent
    lead = _lead_shape(desc, images)
    out = np.empty((*lead, h, w), dtype=np.float32)
    pads: Optional[dict] = None
    checks = set()
    if hx > 0:
        checks |= {"left", "right"}
    if hy > 0:
        checks |= {"top", "bottom"}
    naive_rects = [_RegionRect(0, w, 0, h, frozenset(checks))]
    if variant == "naive":
        rects = naive_rects
    elif variant in ("isp", "isp_warp"):
        if degenerate_geometry(w, h, hx, hy):
            rects = naive_rects  # degenerate: fall back, like the compiler
        elif variant == "isp":
            rects = _pixel_regions(w, h, hx, hy)
        else:
            rects = _warp_regions(w, h, hx, hy, warp=warp_width)
    elif variant == "prepad":
        from .make_border import padded_for

        # No degenerate fallback: the total mappings in make_border handle
        # any apron depth, over-wide windows included.
        rects = [_RegionRect(0, w, 0, h, frozenset())]
        pads = {}
        for acc in desc.accessors:
            key = (acc.image.name, acc.boundary.value, float(acc.constant))
            if key in pads:
                continue
            # UNDEFINED promises every tap stays in bounds, so the apron's
            # values are unobservable — CLAMP is an in-bounds-sound stand-in
            # that keeps the gather total.
            boundary = acc.boundary
            if boundary is Boundary.UNDEFINED:
                boundary = Boundary.CLAMP
            pads[key] = padded_for(
                images, acc.image.name, hx, hy, boundary,
                float(acc.constant), cache=pad_cache,
            )
    else:
        raise ValueError(f"unknown vectorized variant {variant!r}")
    if tile_rows is not None:
        rects = _split_rows(rects, tile_rows)
    for rect in rects:
        if pads is not None:
            ev: _RegionEvaluator = _PrepadEvaluator(desc, pads, rect)
        else:
            ev = _RegionEvaluator(desc, images, rect)
        value = ev.eval(desc.expr)
        out[..., rect.y0 : rect.y1, rect.x0 : rect.x1] = np.broadcast_to(
            value, (*lead, rect.y1 - rect.y0, rect.x1 - rect.x0)
        )
    if trace_ctx is not None:
        tracer, parent = trace_ctx
        tracer.record_span(
            f"kernel:{desc.name}", parent, t_start, time.perf_counter(),
            variant=variant, tile_rows=tile_rows, regions=len(rects),
        )
    return out


def run_pipeline_vectorized(
    pipeline: Pipeline,
    inputs: Optional[dict[str, np.ndarray]] = None,
    *,
    variant: str = "isp",
    tile_rows: Optional[int] = None,
    pad_cache: Optional[dict] = None,
    warp_width: int = WARP_WIDTH,
) -> dict[str, np.ndarray]:
    """Run all pipeline stages; returns every produced image by name.

    Under ``variant="prepad"`` one pad cache spans every stage, so an
    image consumed by several stages (or several taps) under the same
    pattern is padded exactly once for the whole pipeline. Pass
    ``pad_cache`` to extend that reuse across *calls* on the same inputs.
    """
    images: dict[str, np.ndarray] = {}
    if variant == "prepad" and pad_cache is None:
        pad_cache = {}
    for img in pipeline.inputs:
        if inputs is not None and img.name in inputs:
            images[img.name] = np.asarray(inputs[img.name], dtype=np.float32)
        else:
            images[img.name] = img.host
    for kernel in pipeline:
        desc = trace_kernel(kernel)
        images[desc.output_name] = run_kernel_vectorized(
            desc, images, variant=variant, tile_rows=tile_rows,
            pad_cache=pad_cache, warp_width=warp_width,
        )
    return images
