"""Bilateral filter — 13x13 single-kernel filter (paper Section IV-A.1).

The paper's motivating example: an edge-preserving noise filter performing
"two convolutions together, one for computing the spatial closeness component
and the other one for the intensity similarity component". The spatial
weights are compile-time mask coefficients; the intensity weights are
computed per tap with ``expf``, making this the most expensive kernel of the
evaluation (and hence the one where ISP's relative benefit is smallest —
Table IV).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Pipeline,
    expf,
)

#: Window radius: 13x13 window as in the paper.
RADIUS = 6
SIGMA_D = 3.0
SIGMA_R = 0.1


def spatial_mask(radius: int = RADIUS, sigma_d: float = SIGMA_D) -> np.ndarray:
    """Precomputed spatial-closeness coefficients exp(-(dx^2+dy^2)/2sd^2)."""
    size = 2 * radius + 1
    mask = np.zeros((size, size), dtype=np.float32)
    inv = 1.0 / (2.0 * sigma_d * sigma_d)
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            mask[dy + radius, dx + radius] = np.float32(
                math.exp(-(dx * dx + dy * dy) * inv)
            )
    return mask


class BilateralKernel(Kernel):
    """d += c_s * c_r * in(dx,dy); p += c_s * c_r; out = d / p.

    Mirrors paper Listing 4's kernel body: the shared weight subexpression is
    bound to a Python variable, so lowering computes it once per tap (the CSE
    NVCC would perform).
    """

    def __init__(
        self,
        iter_space: IterationSpace,
        acc: Accessor,
        mask: Mask,
        sigma_r: float = SIGMA_R,
    ):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self.sigma_r = sigma_r

    @property
    def name(self) -> str:
        return "bilateral"

    def kernel(self):
        center = self.acc(0, 0)
        inv2sr = 1.0 / (2.0 * self.sigma_r * self.sigma_r)
        d = 0.0
        p = 0.0
        for dx, dy in self.mask.domain():
            tap = self.acc(dx, dy)
            diff = tap - center
            weight = self.mask.coeff(dx, dy) * expf(-(diff * diff) * inv2sr)
            d = d + weight * tap
            p = p + weight
        return d / p


def build_pipeline(
    width: int,
    height: int,
    boundary: Boundary,
    constant: float = 0.0,
    input_image: Optional[Image] = None,
    *,
    radius: int = RADIUS,
    sigma_d: float = SIGMA_D,
    sigma_r: float = SIGMA_R,
) -> Pipeline:
    inp = input_image or Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    kernel = BilateralKernel(
        IterationSpace(out), acc, Mask(spatial_mask(radius, sigma_d)), sigma_r
    )
    return Pipeline("bilateral", [kernel])
