"""Cluster chaos: shard death, network partitions, warm-started respawns.

The cluster inherits the serve stack's one correctness contract and is held
to it across process boundaries: under injected or real failure, every
accepted request either completes **bit-exact** (digest-verified against a
locally computed reference) or fails with a **typed** error from
``CLUSTER_ERROR_KINDS`` — never an untyped error, never silent corruption,
never a hang.

Scenarios:

* SIGKILL one of three shards mid-load — the router fails the dead slot
  over along its rendezvous order, the manager respawns into the same
  slot, and the whole workload lands bit-exact-or-typed (with the load
  generator's one heal/retry round, fully served).
* The replacement shard warm-starts: its engine boots with the dead
  shard's snapshotted autotune table (``boot_configs > 0``), not cold
  priors.
* An injected gateway->shard partition (``cluster.gateway.send``) — the
  shard is healthy but unreachable; dispatch must fail over, the monitor
  must put the slot back in rotation afterwards.
* An injected in-shard process death (``cluster.worker.exit`` shipped to
  the worker via the serialized FaultPlan) — the process dies mid-request
  via ``os._exit``; the connection error converts to failover + respawn.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, armed
from repro.cluster import (
    CLUSTER_ERROR_KINDS,
    ClusterRequest,
    Gateway,
    LocalCluster,
    SyncGateway,
    build_cluster_workload,
    run_load,
)


def _gateway(cluster, **kwargs):
    return SyncGateway(Gateway(cluster.router,
                               metrics_source=cluster.metrics_snapshots,
                               **kwargs))


class TestShardKill:
    def test_kill_one_of_three_mid_load(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-flight, zero untyped
        errors, full recovery after the heal round."""
        with LocalCluster(shards=3, warmstart_dir=tmp_path,
                          snapshot_interval_s=0.25) as cluster:
            gw = _gateway(cluster)
            try:
                workload, pool = build_cluster_workload(
                    90, size=64, seed=21, variant="auto")
                killer = threading.Timer(
                    1.0, lambda: cluster.kill("shard-1"))
                killer.start()
                # run_load digest-verifies every ok response and asserts
                # every error is typed; with the heal/retry round a single
                # shard death must not lose any request.
                report = run_load(gw, workload, pool, concurrency=10)
                killer.join()
                assert report["ok"] == 90, report
                assert not report["errors"], report
                # the dead slot came back and the cluster respawned exactly once
                assert cluster.wait_live("shard-1", timeout=30)
                assert cluster.respawns >= 1
            finally:
                gw.close()

    def test_replacement_shard_warm_starts(self, tmp_path):
        """A respawned shard boots from the autotune snapshot, not cold."""
        with LocalCluster(shards=2, warmstart_dir=tmp_path,
                          snapshot_interval_s=0.2) as cluster:
            gw = _gateway(cluster)
            try:
                # auto traffic teaches the tuners; the snapshot loop persists.
                workload, pool = build_cluster_workload(
                    60, size=64, seed=22, variant="auto")
                report = run_load(gw, workload, pool, concurrency=8)
                assert not report["errors"]
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if all(cluster.warmstart.configs(s) > 0
                           for s in ("shard-0", "shard-1")):
                        break
                    time.sleep(0.1)
                assert cluster.warmstart.configs("shard-0") > 0
                assert cluster.warmstart.configs("shard-1") > 0

                cold_boot = cluster.shard("shard-0").boot_configs
                assert cold_boot == 0  # the first boot really was cold

                cluster.kill("shard-0")
                assert cluster.wait_live("shard-0", timeout=30)
                warm_boot = cluster.shard("shard-0").boot_configs
                assert warm_boot > 0, (
                    "replacement shard booted with cold priors despite "
                    f"a snapshot holding {cluster.warmstart.configs('shard-0')}"
                    " configs")
            finally:
                gw.close()

    def test_respawned_slot_serves_again(self, tmp_path):
        with LocalCluster(shards=2, warmstart_dir=tmp_path,
                          snapshot_interval_s=0) as cluster:
            gw = _gateway(cluster)
            try:
                cluster.kill("shard-0")
                assert cluster.wait_live("shard-0", timeout=30)
                workload, pool = build_cluster_workload(20, size=64, seed=23)
                report = run_load(gw, workload, pool, concurrency=4)
                assert report["ok"] == 20
                assert len(report["by_slot"]) == 2  # both slots serving
            finally:
                gw.close()


class TestGatewayPartition:
    def test_injected_partition_fails_over(self, tmp_path):
        """cluster.gateway.send: the shard is healthy, the path is not —
        dispatch fails over and the request still completes bit-exact."""
        plan = FaultPlan.make(404, [
            FaultSpec.make("cluster.gateway.send", "error",
                           rate=0.3, max_fires=8),
        ])
        with LocalCluster(shards=3, warmstart_dir=tmp_path,
                          snapshot_interval_s=0) as cluster:
            gw = _gateway(cluster)
            try:
                with armed(plan) as injector:
                    workload, pool = build_cluster_workload(
                        40, size=64, seed=24)
                    report = run_load(gw, workload, pool, concurrency=6)
                    fired = injector.counts().get("cluster.gateway.send", 0)
                assert fired > 0, "the partition fault never fired"
                assert report["failovers"] >= fired - report["retried"]
                assert report["ok"] == 40, report
                assert not report["errors"], report
                counters = gw.gateway.metrics.snapshot()["counters"]
                assert counters["gateway.partitions_injected"] == fired
                # the monitor heals partition-marked slots: all live again
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if len(cluster.table.live_slots()) == 3:
                        break
                    time.sleep(0.05)
                assert len(cluster.table.live_slots()) == 3
            finally:
                gw.close()

    def test_every_slot_partitioned_is_typed_unavailable(self):
        """When no shard is reachable the failure is typed, not raised."""
        import asyncio

        from repro.cluster import Router, RoutingTable

        table = RoutingTable()
        for i in range(2):
            # Ports that nothing listens on: every dial fails fast.
            table.set_addr(f"shard-{i}", ("127.0.0.1", 1))
        gw = Gateway(Router(table))
        resp = asyncio.run(gw.submit(ClusterRequest(
            "gaussian",
            image=np.zeros((32, 32), dtype=np.float32))))
        assert not resp.ok
        assert resp.error_kind == "shard_unavailable"
        assert resp.failovers == 2


class TestWorkerExit:
    def test_in_shard_process_death_is_absorbed(self, tmp_path):
        """cluster.worker.exit ships to the shard in its spawn command; the
        shard os._exit()s mid-request. The gateway sees a dead connection,
        fails over, and the manager respawns the slot."""
        faults = FaultPlan.make(505, [
            # Every shard-1 process dies on its first run request (the fault
            # fires before any serving, so the connection error always
            # converts to failover). max_fires is per process, so each
            # respawn dies once too — sustained churn on one slot.
            FaultSpec.make("cluster.worker.exit", "crash", rate=1.0,
                           max_fires=1, match={"slot": "shard-1"}),
        ]).to_json()
        with LocalCluster(shards=3, warmstart_dir=tmp_path,
                          snapshot_interval_s=0,
                          faults_json=faults) as cluster:
            gw = _gateway(cluster)
            try:
                workload, pool = build_cluster_workload(
                    60, size=64, seed=25)
                report = run_load(gw, workload, pool, concurrency=8)
                # every request served or typed; with the heal round the
                # deaths are fully absorbed
                assert report["ok"] == 60, report
                assert not report["errors"], report
                assert cluster.respawns >= 1, (
                    "no shard died: the exit fault never fired")
            finally:
                gw.close()


class TestTypedErrorUniverse:
    def test_all_load_errors_come_from_the_typed_set(self, tmp_path):
        """Belt-and-braces under combined faults: run_load itself asserts
        kind membership; this scenario layers engine-level faults (shipped
        to shards) on top of gateway partitions to widen the error mix."""
        shard_faults = FaultPlan.make(606, [
            FaultSpec.make("serve.engine.execute", "error", rate=0.1,
                           max_fires=20),
        ]).to_json()
        gateway_faults = FaultPlan.make(707, [
            FaultSpec.make("cluster.gateway.send", "error", rate=0.1,
                           max_fires=5),
        ])
        with LocalCluster(shards=2, warmstart_dir=tmp_path,
                          snapshot_interval_s=0,
                          faults_json=shard_faults) as cluster:
            gw = _gateway(cluster)
            try:
                with armed(gateway_faults):
                    workload, pool = build_cluster_workload(
                        50, size=64, seed=26)
                    # verify=True digest-checks every ok response; run_load
                    # raises on any untyped kind. Engine retries absorb most
                    # injected execute errors; whatever surfaces is typed.
                    report = run_load(gw, workload, pool, concurrency=6)
                for kind in report["errors"]:
                    assert kind in CLUSTER_ERROR_KINDS
                assert report["ok"] + sum(report["errors"].values()) == 50
            finally:
                gw.close()
