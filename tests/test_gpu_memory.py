"""Unit tests for simulated global memory."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.memory import SEGMENT_BYTES, GlobalMemory, MemoryError_, transactions_for
from repro.ir.types import DataType


def full_mask():
    return np.ones(32, dtype=bool)


class TestAllocation:
    def test_alloc_alignment(self):
        mem = GlobalMemory(1 << 16)
        a = mem.alloc(100)
        b = mem.alloc(4)
        assert a % 128 == 0 and b % 128 == 0
        assert b >= a + 100

    def test_null_address_reserved(self):
        mem = GlobalMemory(1 << 16)
        assert mem.alloc(4) >= 4

    def test_out_of_memory(self):
        mem = GlobalMemory(1 << 12)
        with pytest.raises(MemoryError_, match="out of simulated memory"):
            mem.alloc(1 << 13)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GlobalMemory(10)  # not multiple of 4
        mem = GlobalMemory(1 << 12)
        with pytest.raises(ValueError):
            mem.alloc(0)


class TestHostAccess:
    def test_roundtrip_f32(self, rng):
        mem = GlobalMemory(1 << 16)
        data = rng.random((8, 8)).astype(np.float32)
        base = mem.alloc(data.size * 4)
        mem.write_array(base, data)
        back = mem.read_array(base, (8, 8), DataType.F32)
        assert np.array_equal(back, data)

    def test_roundtrip_s32(self):
        mem = GlobalMemory(1 << 16)
        data = np.arange(-8, 8, dtype=np.int32)
        base = mem.alloc(data.size * 4)
        mem.write_array(base, data)
        assert np.array_equal(mem.read_array(base, (16,), DataType.S32), data)

    def test_rejects_f64(self):
        mem = GlobalMemory(1 << 16)
        base = mem.alloc(64)
        with pytest.raises(TypeError):
            mem.write_array(base, np.zeros(4, dtype=np.float64))


class TestLaneAccess:
    def test_gather_scatter_roundtrip(self, rng):
        mem = GlobalMemory(1 << 16)
        base = mem.alloc(32 * 4)
        vals = rng.random(32).astype(np.float32)
        addrs = base + 4 * np.arange(32, dtype=np.int64)
        mem.scatter(addrs, vals, full_mask(), DataType.F32)
        got = mem.gather(addrs, full_mask(), DataType.F32)
        assert np.array_equal(got, vals)

    def test_masked_lanes_untouched(self):
        mem = GlobalMemory(1 << 16)
        base = mem.alloc(32 * 4)
        addrs = base + 4 * np.arange(32, dtype=np.int64)
        mask = np.zeros(32, dtype=bool)
        mask[::2] = True
        mem.scatter(addrs, np.full(32, 7.0, np.float32), mask, DataType.F32)
        got = mem.gather(addrs, full_mask(), DataType.F32)
        assert np.all(got[::2] == 7.0)
        assert np.all(got[1::2] == 0.0)

    def test_oob_active_lane_traps(self):
        mem = GlobalMemory(1 << 12)
        addrs = np.full(32, mem.size_bytes, dtype=np.int64)
        with pytest.raises(MemoryError_, match="out of bounds"):
            mem.gather(addrs, full_mask(), DataType.F32)

    def test_oob_inactive_lane_ignored(self):
        mem = GlobalMemory(1 << 12)
        base = mem.alloc(32 * 4)
        addrs = base + 4 * np.arange(32, dtype=np.int64)
        addrs[5] = 10**9  # wild address on an inactive lane
        mask = full_mask()
        mask[5] = False
        mem.gather(addrs, mask, DataType.F32)  # no raise

    def test_misaligned_traps(self):
        mem = GlobalMemory(1 << 12)
        base = mem.alloc(256)
        addrs = np.full(32, base + 2, dtype=np.int64)
        with pytest.raises(MemoryError_, match="misaligned"):
            mem.gather(addrs, full_mask(), DataType.F32)

    def test_negative_address_traps(self):
        mem = GlobalMemory(1 << 12)
        addrs = np.full(32, -4, dtype=np.int64)
        with pytest.raises(MemoryError_):
            mem.gather(addrs, full_mask(), DataType.F32)


class TestCoalescing:
    def test_fully_coalesced_is_one_transaction(self):
        addrs = 1024 + 4 * np.arange(32, dtype=np.int64)
        assert transactions_for(addrs, full_mask()) == 1

    def test_strided_access_many_transactions(self):
        addrs = 1024 + SEGMENT_BYTES * np.arange(32, dtype=np.int64)
        assert transactions_for(addrs, full_mask()) == 32

    def test_broadcast_is_one(self):
        addrs = np.full(32, 2048, dtype=np.int64)
        assert transactions_for(addrs, full_mask()) == 1

    def test_inactive_mask_zero(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert transactions_for(addrs, np.zeros(32, dtype=bool)) == 0

    @given(st.integers(min_value=0, max_value=10**6))
    def test_transactions_bounded(self, base):
        addrs = base + 4 * np.arange(32, dtype=np.int64)
        t = transactions_for(addrs, full_mask())
        assert 1 <= t <= 2  # 128 contiguous bytes touch at most 2 segments
