"""Raw-speed tier: the pre-padded mode and kernel-level batching, priced.

Paper Section I dismisses padding because of its extra memory copy — for a
*single* filter invocation. This benchmark pins down where that argument
flips on the serve workload (PRs 1-6: repeated filters on same-shape
images):

* **prepad vs isp, repeated same-image** — with the plan cached, the
  per-request cost of ``variant="prepad"`` (one total-mapping gather + one
  check-free whole-image evaluation) must beat ``isp`` (nine region
  evaluations) and ``naive`` (fully checked single region). Asserted on the
  Table III small-image regime, where region-dispatch overhead dominates.
* **the autotuner agrees** — an engine serving repeated ``variant="auto"``
  requests of one image must *commit* prepad for that configuration after
  its trial phase: the raw-speed tier is reachable without any client
  opting in explicitly.
* **kernel-level batching** — executing a stacked ``(N, H, W)`` batch in
  one call must amortize per-call overhead: >= 1.5x over a loop of N
  single executions at N = 8 (measured well above the crossover so loaded
  CI machines keep margin).

Headline numbers land in ``BENCH_serve_prepad_batch.json`` at the repo
root (machine-readable trajectory; see ``conftest.bench_summary``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime import run_kernel_vectorized
from repro.serve.engine import Request, ServeEngine
from repro.serve.plan import build_plan

from harness import stable_seed

#: Small-image regime (region overhead dominates): prepad's home turf.
SIZE = 64
#: Batch-amortization measurement size: small enough that per-call Python
#: overhead is a large fraction of a single execution (the quantity
#: batching amortizes), with margin over the 1.5x floor on loaded CI boxes.
BATCH_SIZE_PX = 48
APP = "gaussian"
PATTERN = "mirror"
BATCH_N = 8
#: amortization curve points (the crossover pin)
BATCH_SIZES = (1, 2, 4, 8)


def _per_call_us(fn, *, reps: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    # Best-of-3 rounds of `reps` calls: co-tenant noise only ever inflates
    # a round, so the minimum is the least-contaminated estimate (same
    # convention as the autotuner's trial scoring).
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best * 1e6


def test_prepad_beats_isp_on_repeated_requests(benchmark, report,
                                               bench_summary, case_rng):
    img = case_rng.standard_normal((SIZE, SIZE)).astype(np.float32)

    def build():
        per_call = {}
        for variant in ("naive", "isp", "isp_warp", "prepad"):
            plan = build_plan(APP, PATTERN, SIZE, SIZE, variant=variant)
            per_call[variant] = _per_call_us(lambda: plan.execute(img),
                                             reps=50)

        # --- autotuner arbitration on the repeated-same-image workload
        with ServeEngine(workers=1, batch_size=1, autotune=True) as engine:
            tuner = engine.tuner
            n_requests = (len(tuner.candidates) * tuner.trials_per_variant
                          + 4)
            responses = engine.run([
                Request(app=APP, image=img, pattern=PATTERN, variant="auto")
                for _ in range(n_requests)
            ])
            assert all(r.ok for r in responses), [r.error for r in responses]
            committed = [row["committed"] for row in tuner.table()]

        # --- kernel-level batching amortization curve
        plan = build_plan(APP, PATTERN, BATCH_SIZE_PX, BATCH_SIZE_PX,
                          variant="prepad")
        batch_rows = []
        for n in BATCH_SIZES:
            stack = case_rng.standard_normal(
                (n, BATCH_SIZE_PX, BATCH_SIZE_PX)
            ).astype(np.float32)
            batched_us = _per_call_us(lambda: plan.execute_batch(stack),
                                      reps=30)
            loop_us = _per_call_us(
                lambda: [plan.execute(stack[i]) for i in range(n)], reps=30
            )
            batch_rows.append({
                "n": n,
                "batched_us": batched_us,
                "loop_us": loop_us,
                "speedup": loop_us / batched_us,
            })
        return per_call, committed, batch_rows

    per_call, committed, batch_rows = benchmark.pedantic(
        build, rounds=1, iterations=1)
    at_8 = next(r for r in batch_rows if r["n"] == BATCH_N)

    lines = [
        f"raw-speed tier @ {APP}/{PATTERN}/{SIZE}x{SIZE}",
        "  per-request (plan cached):",
    ]
    for v, us in sorted(per_call.items(), key=lambda kv: kv[1]):
        lines.append(f"    {v:8s} {us:9.1f} us")
    lines.append(f"  autotuner committed: {committed}")
    lines.append(
        f"  batched (N,H,W) vs loop-of-1 [prepad @ "
        f"{BATCH_SIZE_PX}x{BATCH_SIZE_PX}]:"
    )
    for row in batch_rows:
        lines.append(
            f"    N={row['n']}: {row['batched_us']:9.1f} us vs "
            f"{row['loop_us']:9.1f} us  -> {row['speedup']:.2f}x"
        )
    text = "\n".join(lines)

    data = {
        "app": APP, "pattern": PATTERN, "size": SIZE,
        "batch_size_px": BATCH_SIZE_PX,
        "per_call_us": per_call,
        "tuner_committed": committed,
        "batch": batch_rows,
        "batch8_speedup": at_8["speedup"],
    }
    report("serve_prepad_batch", text, data=data)
    bench_summary("serve_prepad_batch", data)

    # Prepad must beat both partitioned shapes *and* naive on repeated
    # same-image requests — that is the tier's whole claim.
    assert per_call["prepad"] < per_call["isp"], per_call
    assert per_call["prepad"] < per_call["naive"], per_call
    # The tuner must find the tier on its own.
    assert committed == ["prepad"], committed
    # Batching must amortize: >= 1.5x over loop-of-1 at N=8.
    assert at_8["speedup"] >= 1.5, batch_rows


#: Table III-style cross-check set: (app, size) cells measured under all
#: four patterns. Bilateral is capped at 128 — its host naive execution is
#: ~70 ms/call and the larger sizes add minutes for no extra signal (the
#: 256/512 cells, measured offline, sit between the two regimes shown;
#: see EXPERIMENTS.md "Pre-padding").
CROSSCHECK_CELLS = (("gaussian", 128), ("gaussian", 256), ("bilateral", 128))
CROSSCHECK_PATTERNS = ("clamp", "mirror", "repeat", "constant")


def test_padding_model_crosscheck(benchmark, report, bench_summary, case_rng):
    """PaddingEstimate-based model gain vs measured host prepad gain.

    The analytic model prices prepad for the *GPU*: a bandwidth-cost copy
    (Section I's objection) plus the check-free kernel, against a naive
    kernel whose checks are nearly free ALU. The host vectorized executor
    prices checks very differently (gather indices + np.where per tap), so
    the measured gain must exceed the model's — systematically, not noisily.
    The residual gap is documented in EXPERIMENTS.md; here we pin its sign
    and the regime structure: prepad never loses on the host set, and the
    model agrees best on the expensive kernel (bilateral), where per-tap
    check cost is small relative to the kernel body on both substrates.
    """
    from repro.model.prediction import predict_prepad
    from repro.serve.plan import trace_app

    def build():
        rows = []
        for app, size in CROSSCHECK_CELLS:
            for pattern in CROSSCHECK_PATTERNS:
                descs = trace_app(app, pattern, size, size)
                desc = next(d for d in descs if d.needs_border_handling)
                name = desc.accessors[0].condition.image.name
                src = case_rng.standard_normal((size, size)) \
                    .astype(np.float32)
                reps = 5 if app == "gaussian" else 1
                naive_us = _per_call_us(
                    lambda: run_kernel_vectorized(desc, {name: src},
                                                  variant="naive"),
                    reps=reps, warmup=1)
                prepad_us = _per_call_us(
                    lambda: run_kernel_vectorized(desc, {name: src},
                                                  variant="prepad"),
                    reps=reps, warmup=1)
                rows.append({
                    "app": app, "size": size, "pattern": pattern,
                    "measured_gain": naive_us / prepad_us,
                    "model_gain": predict_prepad(desc).gain,
                })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = ["padding model vs measured host prepad gain:"]
    for r in rows:
        lines.append(
            f"  {r['app']:9s} {r['size']:4d} {r['pattern']:8s} "
            f"measured={r['measured_gain']:5.2f}x "
            f"model={r['model_gain']:5.2f}x"
        )
    report("prepad_model_crosscheck", "\n".join(lines), data={"cells": rows})
    bench_summary("prepad_model_crosscheck", {"cells": rows})

    # Prepad never loses on the host across the whole set.
    assert all(r["measured_gain"] > 1.0 for r in rows), rows
    # The model is conservative in the same direction everywhere it and the
    # measurement disagree: measured >= model on the cheap kernel's cells.
    cheap = [r for r in rows if r["app"] == "gaussian"]
    assert all(r["measured_gain"] > r["model_gain"] for r in cheap), cheap
    # On the expensive kernel the two substrates converge: the model's gain
    # is within a factor of 2 of the measurement for every bilateral cell.
    exp = [r for r in rows if r["app"] == "bilateral"]
    assert all(
        0.5 < r["model_gain"] / r["measured_gain"] < 2.0 for r in exp
    ), exp


def test_engine_kernel_batches_same_signature_requests(benchmark, case_rng,
                                                       bench_summary):
    """Engine-level: a micro-batch of same-signature requests is served by
    one (N, H, W) call, and the batched engine beats the unbatched one on
    the same workload."""
    imgs = [
        case_rng.standard_normal((SIZE, SIZE)).astype(np.float32)
        for _ in range(BATCH_N)
    ]

    def run_engine(kernel_batching: bool) -> tuple[float, dict]:
        with ServeEngine(workers=1, batch_size=BATCH_N,
                         kernel_batching=kernel_batching) as engine:
            requests = [
                Request(app=APP, image=im, pattern=PATTERN, variant="prepad")
                for im in imgs
            ]
            engine.run(requests)  # warm the plan cache
            t0 = time.perf_counter()
            for _ in range(10):
                responses = engine.run([
                    Request(app=APP, image=im, pattern=PATTERN,
                            variant="prepad")
                    for im in imgs
                ])
                assert all(r.ok for r in responses)
            elapsed = time.perf_counter() - t0
            return elapsed, engine.stats()["engine"]

    batched_s, batched_stats, unbatched_s, unbatched_stats = \
        benchmark.pedantic(
            lambda: run_engine(True) + run_engine(False),
            rounds=1, iterations=1)

    assert batched_stats.get("engine.kernel_batches", 0) > 0
    assert unbatched_stats.get("engine.kernel_batches", 0) == 0
    bench_summary("serve_kernel_batching", {
        "batched_s": batched_s,
        "unbatched_s": unbatched_s,
        "speedup": unbatched_s / batched_s,
        "kernel_batches": batched_stats.get("engine.kernel_batches"),
        "kernel_batched_requests": batched_stats.get(
            "engine.kernel_batched_requests"),
    })
    # The threaded engine adds queue/submit overhead on top of the kernel
    # call, so the end-to-end ratio is softer than the plan-level one —
    # batching still must not lose.
    assert batched_s < unbatched_s * 1.10, (batched_s, unbatched_s)
