"""Structural tests of the generated naive / ISP / warp-ISP kernels."""

import numpy as np
import pytest

from repro.compiler import (
    CompileError,
    Region,
    Variant,
    compile_kernel,
    trace_kernel,
)
from repro.dsl import Boundary
from repro.ir import Opcode, count_by_region
from tests.conftest import make_conv_kernel

MASK3 = np.ones((3, 3), np.float32) / 9.0


def conv_desc(width=128, height=128, boundary=Boundary.CLAMP, mask=MASK3):
    return trace_kernel(make_conv_kernel(width, height, boundary, mask))


class TestNaive:
    def test_single_region(self):
        ck = compile_kernel(conv_desc(), variant=Variant.NAIVE, block=(32, 4))
        regions = count_by_region(ck.func)
        assert set(regions) <= {"naive", "(shared)"}
        assert ck.effective_variant is Variant.NAIVE
        assert ck.geometry is None

    def test_no_switch_instructions(self):
        ck = compile_kernel(conv_desc(), variant=Variant.NAIVE)
        assert all(i.role != "switch" for i in ck.func.instructions())

    def test_bounds_guard_only_when_needed(self):
        ck = compile_kernel(conv_desc(128, 128), variant=Variant.NAIVE, block=(32, 4))
        branches = [i for i in ck.func.instructions()
                    if i.op is Opcode.BRA and i.pred is not None]
        assert not branches  # 128 divides evenly: no guard
        ck2 = compile_kernel(conv_desc(130, 130), variant=Variant.NAIVE, block=(32, 4))
        branches2 = [i for i in ck2.func.instructions()
                     if i.op is Opcode.BRA and i.pred is not None]
        assert branches2  # guard present


class TestIsp:
    def test_nine_regions_emitted(self):
        ck = compile_kernel(conv_desc(), variant=Variant.ISP, block=(32, 4))
        regions = count_by_region(ck.func)
        expected = {r.value for r in Region}
        assert expected <= set(regions)

    def test_body_region_has_no_checks(self):
        """The whole point of ISP (paper Fig. 1): Body is check-free."""
        ck = compile_kernel(conv_desc(), variant=Variant.ISP)
        for instr in ck.func.instructions():
            if instr.region == Region.BODY.value:
                assert instr.role != "check"

    def test_corner_checks_both_sides_edges_one(self):
        ck = compile_kernel(conv_desc(boundary=Boundary.CLAMP), variant=Variant.ISP)
        by_region = {}
        for instr in ck.func.instructions():
            if instr.role == "check" and instr.region:
                by_region.setdefault(instr.region, 0)
                by_region[instr.region] += 1
        # Corners check 2 sides, edges 1 -> roughly double the check count.
        assert by_region["TL"] > by_region["T"]
        assert by_region["TL"] > by_region["L"]
        assert Region.BODY.value not in by_region

    def test_switch_chain_tagged_and_ordered(self):
        ck = compile_kernel(conv_desc(), variant=Variant.ISP)
        switch = [i for i in ck.func.instructions() if i.role == "switch"]
        assert switch, "dispatch chain missing"
        assert all(i.op in (Opcode.SETP, Opcode.BRA, Opcode.AND, Opcode.MOV,
                            Opcode.SHR) for i in switch)

    def test_metadata(self):
        ck = compile_kernel(conv_desc(), variant=Variant.ISP, block=(32, 4))
        assert ck.func.metadata["variant"] is Variant.ISP
        assert ck.geometry is not None
        assert ck.geometry.grid == (4, 32)

    def test_point_operator_collapses_to_naive(self):
        from repro.dsl import Accessor, Image, IterationSpace, Kernel

        class PointK(Kernel):
            def __init__(self, it, acc):
                super().__init__(it)
                self.acc = self.add_accessor(acc)

            def kernel(self):
                return self.acc(0, 0) + 1.0

        inp, out = Image(64, 64, "inp"), Image(64, 64, "out")
        k = PointK(IterationSpace(out), Accessor(inp))
        ck = compile_kernel(k, variant=Variant.ISP)
        assert ck.variant is Variant.ISP
        assert ck.effective_variant is Variant.NAIVE

    def test_degenerate_fallback_and_strict(self):
        desc = conv_desc(8, 8, mask=np.ones((13, 13), np.float32))
        ck = compile_kernel(desc, variant=Variant.ISP, block=(32, 4))
        assert ck.effective_variant is Variant.NAIVE
        with pytest.raises(CompileError, match="degenerate"):
            compile_kernel(desc, variant=Variant.ISP, block=(32, 4),
                           fallback_to_naive=False)

    def test_isp_model_variant_rejected_here(self):
        with pytest.raises(CompileError, match="selection policy"):
            compile_kernel(conv_desc(), variant=Variant.ISP_MODEL)

    def test_one_dimensional_mask_skips_other_axis(self):
        """A 1x5 mask needs no top/bottom handling anywhere."""
        mask = np.ones((1, 5), np.float32)
        ck = compile_kernel(conv_desc(mask=mask), variant=Variant.ISP)
        regions = count_by_region(ck.func)
        # No T/B/TL/... regions exist: hy == 0 -> only x-axis borders.
        assert Region.T.value not in regions
        assert Region.L.value in regions
        assert Region.R.value in regions


class TestWarpIsp:
    def test_warp_dispatch_emitted_for_wide_blocks(self):
        ck = compile_kernel(conv_desc(256, 64), variant=Variant.ISP_WARP,
                            block=(128, 1))
        assert ck.func.metadata["warp_grained_effective"]
        shifts = [i for i in ck.func.instructions()
                  if i.op is Opcode.SHR and i.role == "switch"]
        assert shifts, "warp index (tid.x >> 5) not computed"

    def test_falls_back_for_narrow_blocks(self):
        """With 32-wide blocks each row is one warp: warp dispatch is
        meaningless and must be disabled (same code as block ISP)."""
        ck = compile_kernel(conv_desc(), variant=Variant.ISP_WARP, block=(32, 4))
        assert not ck.func.metadata["warp_grained_effective"]

    def test_functional_equivalence_with_block_isp(self, rng):
        """Warp re-routing must not change results, only routing."""
        from repro.filters.reference import correlate
        from repro.runtime import run_pipeline_simt
        from repro.dsl import Pipeline

        src = rng.random((32, 128)).astype(np.float32)
        k = make_conv_kernel(128, 32, Boundary.MIRROR, MASK3)
        pipe = Pipeline("conv", [k])
        res = run_pipeline_simt(pipe, variant=Variant.ISP_WARP, block=(128, 1),
                                inputs={"inp": src})
        ref = correlate(src, MASK3, Boundary.MIRROR)
        assert np.abs(res.output - ref).max() < 1e-6

    def test_warp_isp_reduces_bordered_warp_work(self):
        """In an L block, only warp 0 should run the L path; the block's
        total checked instructions must drop vs block-grained ISP."""
        from repro.gpu import GTX680
        from repro.runtime import profile_kernel

        desc = conv_desc(256, 64, Boundary.REPEAT)
        p_blk = profile_kernel(desc, variant=Variant.ISP, block=(128, 1),
                               use_cache=False)
        p_wrp = profile_kernel(desc, variant=Variant.ISP_WARP, block=(128, 1),
                               use_cache=False)
        # Compare the left-border block class cycles.
        left_cls = [c for c in p_blk.classes if c.region is Region.L][0].name
        blk = p_blk.profiles[left_cls].warp_instructions
        wrp = p_wrp.profiles[left_cls].warp_instructions
        assert wrp < blk
