"""Table I — Bilateral filter PTX instruction comparison per ISP region.

Paper Section IV-A.1: the bilateral filter (13x13 window, Clamp pattern) is
compiled naive and with ISP; the dynamic instructions of one representative
block per region are inventoried by PTX keyword. The reproduction prints the
same layout: one column per region plus the naive column.

Expected shape (paper's two observations):
  1. only some regions clearly beat naive — T, B and Body do, the corner and
     L/R regions are close to naive (they still pay checks plus the switch);
  2. the big reductions are in arithmetic categories (add/max/cvt/setp...),
     i.e. the address-calculation pipeline.
"""

from __future__ import annotations

from repro.compiler import Region, Variant, trace_kernel
from repro.dsl import Boundary
from repro.filters import bilateral
from repro.gpu import GTX680
from repro.ir.stats import CATEGORY_ORDER
from repro.reporting import format_table
from repro.runtime import profile_kernel

SIZE = 2048
BLOCK = (32, 4)

REGION_COLUMNS = [
    Region.TL, Region.T, Region.TR, Region.L, Region.BODY,
    Region.R, Region.BL, Region.B, Region.BR,
]


def build_table() -> str:
    pipe = bilateral.build_pipeline(SIZE, SIZE, Boundary.CLAMP)
    desc = trace_kernel(pipe.kernels[0])

    prof_naive = profile_kernel(desc, variant=Variant.NAIVE, block=BLOCK,
                                device=GTX680)
    prof_isp = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                              device=GTX680)

    # Per-block dynamic keyword counts: naive uses a Body-class block (all
    # naive blocks execute the same branchless clamp code); ISP reports one
    # representative block per region, including its share of the dispatch
    # chain — exactly Table I's accounting.
    naive_counts = prof_naive.region_keyword_counts()[Region.BODY]
    isp_counts = prof_isp.region_keyword_counts()

    keywords = [k for k in CATEGORY_ORDER
                if k in naive_counts
                or any(k in c for c in isp_counts.values())]

    headers = ["instr"] + [r.value for r in REGION_COLUMNS] + ["Naive"]
    rows = []
    for kw in keywords:
        row = [kw]
        for region in REGION_COLUMNS:
            row.append(isp_counts.get(region, {}).get(kw, 0))
        row.append(naive_counts.get(kw, 0))
        rows.append(row)
    total_row = ["TOTAL"]
    for region in REGION_COLUMNS:
        total_row.append(sum(isp_counts.get(region, {}).values()))
    total_row.append(sum(naive_counts.values()))
    rows.append(total_row)

    table = format_table(
        headers, rows,
        title=f"Table I (reproduced): Bilateral 13x13 Clamp, {SIZE}x{SIZE}, "
              f"block {BLOCK[0]}x{BLOCK[1]}, per-block dynamic counts",
    )

    body_total = sum(isp_counts[Region.BODY].values())
    naive_total = sum(naive_counts.values())
    table += (
        f"\n\nBody vs naive reduction: {naive_total} -> {body_total} "
        f"({100 * (1 - body_total / naive_total):.1f}% fewer warp instructions)"
    )
    return table


def test_table1(benchmark, report):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report("table1_instructions", table)

    # Shape assertions from the paper's observations.
    pipe = bilateral.build_pipeline(SIZE, SIZE, Boundary.CLAMP)
    desc = trace_kernel(pipe.kernels[0])
    isp_counts = profile_kernel(desc, variant=Variant.ISP, block=BLOCK,
                                device=GTX680).region_keyword_counts()
    naive_counts = profile_kernel(desc, variant=Variant.NAIVE, block=BLOCK,
                                  device=GTX680).region_keyword_counts()[Region.BODY]
    naive_total = sum(naive_counts.values())
    totals = {r: sum(c.values()) for r, c in isp_counts.items()}
    # T, B, Body clearly reduce; Body reduces the most.
    assert totals[Region.BODY] < totals[Region.T] <= naive_total
    assert totals[Region.B] < naive_total
    assert totals[Region.BODY] < 0.9 * naive_total
    # Corners reduce least: two of the four checks remain, plus the switch.
    assert totals[Region.TL] > totals[Region.T] > totals[Region.BODY]
    assert totals[Region.TL] > 0.75 * naive_total
