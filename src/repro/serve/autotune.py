"""Adaptive variant selection: the analytic model as a prior, measurement as
the judge.

The paper's model (Eqs. 1-10) predicts whether partitioning pays off via
``G = R_reduced * O_ISP / O_naive`` — and Table III shows it mispredicts
exactly near the switching point, where the margin between variants is small
enough for an online measurement to settle cheaply. The tuner closes that
loop per configuration ``(pipeline digest, image size, border pattern,
device)``:

1. **Prior** — :func:`repro.model.prediction.predict_for` seeds the choice:
   ``G <= 1`` starts from ``naive`` (the Section VI-A.2 fallback), ``G > 1``
   from the partitioned family. The prior also orders the trial schedule, so
   the very first request already runs the model's pick.
2. **Trials** — the next requests for the configuration are routed
   round-robin across ``{naive, isp, isp_warp}`` on the vectorized executor
   until every candidate has ``trials_per_variant`` measured executions.
   Each candidate is scored by its *best* (minimum) observed time — the
   usual autotuner convention, because co-tenant work (plan compiles on a
   sibling worker, GC, scheduler noise) only ever inflates a wall-clock
   sample, never deflates it. An exponential moving average is kept
   alongside for reporting and drift visibility.
3. **Commit** — the empirical winner (lowest best-observed time) is
   committed; agreement with the model's binary prediction is recorded
   (``tuner.model_agreements`` over committed configs — a live Table III).
4. **Hysteresis** — after commit, an occasional probe request gives the
   runner-up a fresh chance to set a better best time; the tuner only
   switches when the challenger beats the incumbent by the ``hysteresis``
   margin, so measurement noise cannot make it flap (``tuner.switches``
   counts real regime changes).
5. **Persistence** — :meth:`AutoTuner.save` writes the learned table to JSON
   and :meth:`AutoTuner.load` restores it, so a warm restart skips trials
   entirely (committed entries serve immediately).

Degradation paths (compile fallback, execution failure) record a *penalty*:
the failing variant's EMA is inflated and, after ``max_failures``, it is
excluded from trials — a variant that cannot be built should never win.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..compiler.frontend import KernelDescription
from ..faults import core as _faults
from ..gpu.device import DeviceSpec
from .metrics import MetricsRegistry
from .plan import combined_digest

#: Concrete vectorized code shapes the tuner arbitrates between. ``fused``
#: is pipeline-level (overlapped tiles, no materialized intermediates); the
#: others are per-stage strategies applied to staged execution.
TUNE_CANDIDATES = ("naive", "isp", "isp_warp", "prepad", "fused")


@dataclasses.dataclass(frozen=True)
class TunerKey:
    """One tuned configuration: what must match for timings to transfer."""

    digest: str
    width: int
    height: int
    pattern: str
    device: str

    def short(self) -> str:
        return (f"{self.digest[:10]}/{self.width}x{self.height}/"
                f"{self.pattern}/{self.device}")


def tuner_key(
    descs: Sequence[KernelDescription], pattern: str, device: DeviceSpec
) -> TunerKey:
    """Key a traced pipeline the same way plan keys do (content digest)."""
    return TunerKey(
        digest=combined_digest(list(descs)),
        width=descs[-1].width,
        height=descs[-1].height,
        pattern=pattern,
        device=device.name,
    )


def pipeline_gain(
    descs: Sequence[KernelDescription],
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = None,
) -> float:
    """The model's G for a pipeline: geometric mean over bordered kernels.

    Point-operator-only pipelines have nothing to partition; their gain is
    1.0 (neither side of the decision), matching the measurement harness.
    """
    from ..model.prediction import predict_for

    gains = []
    for desc in descs:
        if not desc.needs_border_handling:
            continue
        kwargs = {"block": block}
        if device is not None:
            kwargs["device"] = device
        gains.append(predict_for(desc, **kwargs).gain)
    if not gains:
        return 1.0
    return math.exp(sum(math.log(max(g, 1e-12)) for g in gains) / len(gains))


def pipeline_priors(
    descs: Sequence[KernelDescription],
    *,
    block: tuple[int, int] = (32, 4),
    device: DeviceSpec = None,
) -> dict:
    """Both model priors for a pipeline: ISP gain and prepad gain.

    ``gain`` is :func:`pipeline_gain` (Eq. 10, partition vs naive);
    ``prepad_gain`` is the analytic padding model's naive-over-prepad ratio
    (:func:`repro.model.prediction.predict_prepad`), geometric-mean over
    bordered kernels like the ISP side; ``fused_gain`` is the pipeline-level
    staged-over-fused ratio (:func:`repro.model.prediction.predict_fused`,
    the overlapped-tiling crossover). All are 1.0 (neutral) for
    point-operator-only and single-kernel pipelines respectively.
    """
    from ..compiler.isp import CompileError
    from ..model.prediction import predict_fused, predict_prepad

    kwargs = {"block": block}
    if device is not None:
        kwargs["device"] = device
    prepad_gains = []
    for desc in descs:
        if not desc.needs_border_handling:
            continue
        prepad_gains.append(predict_prepad(desc, **kwargs).gain)
    if prepad_gains:
        prepad_gain = math.exp(
            sum(math.log(max(g, 1e-12)) for g in prepad_gains)
            / len(prepad_gains)
        )
    else:
        prepad_gain = 1.0
    try:
        fused_gain = predict_fused(list(descs), **kwargs).gain
    except (ValueError, CompileError):
        fused_gain = 1.0
    return {
        "gain": pipeline_gain(descs, block=block, device=device),
        "prepad_gain": prepad_gain,
        "fused_gain": fused_gain,
    }


@dataclasses.dataclass
class VariantStats:
    """Measured state of one candidate variant within one configuration."""

    #: lowest observed wall time — the candidate's score (noise inflates
    #: samples, so the minimum is the least-contaminated estimate)
    best_seconds: Optional[float] = None
    ema_seconds: Optional[float] = None
    observations: int = 0
    failures: int = 0
    #: decisions handed out but not yet measured (transient, not persisted)
    pending: int = 0

    def observe(self, seconds: float, alpha: float) -> None:
        seconds = float(seconds)
        if self.best_seconds is None or seconds < self.best_seconds:
            self.best_seconds = seconds
        if self.ema_seconds is None:
            self.ema_seconds = seconds
        else:
            self.ema_seconds += alpha * (seconds - self.ema_seconds)
        self.observations += 1

    def to_json(self) -> dict:
        return {
            "best_seconds": self.best_seconds,
            "ema_seconds": self.ema_seconds,
            "observations": self.observations,
            "failures": self.failures,
        }

    @classmethod
    def from_json(cls, data: dict) -> "VariantStats":
        return cls(
            best_seconds=data.get("best_seconds"),
            ema_seconds=data.get("ema_seconds"),
            observations=int(data.get("observations", 0)),
            failures=int(data.get("failures", 0)),
        )


@dataclasses.dataclass
class ConfigState:
    """Everything the tuner knows about one configuration."""

    key: TunerKey
    model_gain: float
    #: the model's prediction: "prepad" when the padding model's gain beats
    #: both 1.0 and the ISP gain, else "isp" when G > 1, else "naive"
    model_choice: str
    stats: dict[str, VariantStats]
    committed: Optional[str] = None
    switches: int = 0
    since_probe: int = 0
    #: analytic padding-model gain (naive / prepad time); None for states
    #: restored from pre-prepad persistence files
    model_prepad_gain: Optional[float] = None
    #: analytic fused-pipeline gain (staged / fused time); None for states
    #: restored from pre-fusion persistence files
    model_fused_gain: Optional[float] = None

    def eligible(self, candidates: Sequence[str], max_failures: int) -> list[str]:
        elig = [c for c in candidates if self.stats[c].failures < max_failures]
        # Never exclude everything: a config whose every variant failed still
        # has to serve — fall back to naive, the always-expressible shape.
        return elig or ["naive"]

    def best_measured(self, among: Sequence[str]) -> Optional[str]:
        timed = [c for c in among if self.stats[c].best_seconds is not None]
        if not timed:
            return None
        return min(timed, key=lambda c: self.stats[c].best_seconds)

    @property
    def agrees_with_model(self) -> Optional[bool]:
        """Does the committed choice land on the model's side of Eq. 10?

        ``isp`` and ``isp_warp`` are both the "partition" side; the model
        only predicts partition-vs-naive. ``None`` until committed.
        """
        if self.committed is None:
            return None
        return (self.committed == "naive") == (self.model_choice == "naive")


class AutoTuner:
    """Model-seeded, measurement-refined variant selector (thread-safe).

    The serve engine calls :meth:`decide` when planning an ``"auto"``
    request, :meth:`observe` after each measured vectorized execution, and
    :meth:`penalize` on degradation paths. All three are O(candidates) under
    one lock; the model prior is computed outside the lock (a racing
    duplicate evaluation is harmless — the model's artifact cache absorbs
    the cost).
    """

    def __init__(
        self,
        *,
        candidates: Sequence[str] = TUNE_CANDIDATES,
        trials_per_variant: int = 2,
        ema_alpha: float = 0.3,
        hysteresis: float = 0.10,
        probe_every: int = 64,
        max_failures: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        path: Optional[Union[str, Path]] = None,
    ):
        if trials_per_variant < 1:
            raise ValueError("trials_per_variant must be >= 1")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if hysteresis < 0.0:
            raise ValueError("hysteresis must be >= 0")
        unknown = set(candidates) - set(TUNE_CANDIDATES)
        if unknown:
            raise ValueError(f"unknown candidates {sorted(unknown)}")
        self.candidates = tuple(candidates)
        self.trials_per_variant = trials_per_variant
        self.ema_alpha = ema_alpha
        self.hysteresis = hysteresis
        self.probe_every = probe_every
        self.max_failures = max_failures
        self.path = Path(path) if path is not None else None

        m = metrics if metrics is not None else MetricsRegistry()
        self.metrics = m
        self._c_trials = m.counter(
            "tuner.trials", "trial-phase decisions routed to a candidate")
        self._c_commits = m.counter(
            "tuner.commits", "configurations committed to an empirical winner")
        self._c_agreements = m.counter(
            "tuner.model_agreements",
            "commits that landed on the model's side of Eq. 10")
        self._c_switches = m.counter(
            "tuner.switches", "post-commit regime changes past hysteresis")
        self._c_probes = m.counter(
            "tuner.probes", "post-commit refresh measurements of the runner-up")
        self._c_penalties = m.counter(
            "tuner.penalties", "degradation-path penalties recorded")
        self._c_load_errors = m.counter(
            "tuner.load_errors",
            "corrupt/unreadable persistence files ignored on warm restart")
        self._g_configs = m.gauge(
            "tuner.configs", "configurations in the learned table")
        self._g_agreement = m.gauge(
            "tuner.agreement_rate", "model agreement over committed configs")

        self._lock = threading.Lock()
        self._states: dict[TunerKey, ConfigState] = {}

        if self.path is not None and self.path.exists():
            # A corrupt or stale cache file must never take the tuner (and
            # with it the engine) down on a warm restart: losing learned
            # state is a cold start, not an outage. Explicit load() calls
            # stay strict so operators see real corruption.
            try:
                self.load(self.path)
            except (ValueError, OSError):
                self._c_load_errors.inc()
                with self._lock:
                    self._states.clear()
                    self._update_agreement_gauge()

    # -------------------------------------------------------------- decisions

    def decide(
        self, key: TunerKey, prior: Callable[[], Union[float, dict]]
    ) -> tuple[str, str]:
        """Pick the variant to build/execute for one request of ``key``.

        ``prior`` returns the model priors — either the bare pipeline gain G
        (float) or a :func:`pipeline_priors` dict carrying the prepad gain
        too; it is only invoked the first time a configuration is seen.
        Returns ``(variant, phase)`` with phase one of ``"trial"``,
        ``"probe"``, ``"serve"``.
        """
        state = self._state_for(key, prior)
        with self._lock:
            eligible = state.eligible(self.candidates, self.max_failures)
            if state.committed is None:
                variant = self._pick_trial(state, eligible)
                if variant is not None:
                    state.stats[variant].pending += 1
                    self._c_trials.inc()
                    return variant, "trial"
                # All trials are in flight but not yet measured: serve the
                # best timing so far, else the model's pick.
                provisional = state.best_measured(eligible)
                if provisional is None:
                    provisional = (state.model_choice
                                   if state.model_choice in eligible
                                   else eligible[0])
                return provisional, "serve"

            state.since_probe += 1
            if (self.probe_every and len(eligible) > 1
                    and state.since_probe >= self.probe_every):
                state.since_probe = 0
                others = [c for c in eligible if c != state.committed]
                runner = state.best_measured(others) or others[0]
                state.stats[runner].pending += 1
                self._c_probes.inc()
                return runner, "probe"
            return state.committed, "serve"

    def _pick_trial(
        self, state: ConfigState, eligible: list[str]
    ) -> Optional[str]:
        """Least-measured eligible candidate still owing trials, model-first."""

        def order(c: str) -> tuple:
            st = state.stats[c]
            # Fewest (measured + in-flight) first; the model's pick breaks
            # ties, so the first request of a new config runs the prior.
            return (st.observations + st.pending, c != state.model_choice,
                    self.candidates.index(c))

        candidate = min(eligible, key=order)
        st = state.stats[candidate]
        if st.observations + st.pending >= self.trials_per_variant:
            return None
        return candidate

    def _state_for(
        self, key: TunerKey, prior: Callable[[], Union[float, dict]]
    ) -> ConfigState:
        with self._lock:
            state = self._states.get(key)
        if state is not None:
            return state
        # The prior is either the bare ISP gain (legacy float) or a dict with
        # every model prior — {"gain": G, "prepad_gain": ..., "fused_gain": ...}.
        raw = prior()
        if isinstance(raw, dict):
            gain = float(raw.get("gain", 1.0))
            prepad_gain = raw.get("prepad_gain")
            prepad_gain = None if prepad_gain is None else float(prepad_gain)
            fused_gain = raw.get("fused_gain")
            fused_gain = None if fused_gain is None else float(fused_gain)
        else:
            gain = float(raw)
            prepad_gain = None
            fused_gain = None
        choice = "isp" if gain > 1.0 else "naive"
        if (prepad_gain is not None and "prepad" in self.candidates
                and prepad_gain > max(gain, 1.0)):
            choice = "prepad"
        # The fused prior is a *pipeline-level* gain over staged execution;
        # it outranks the per-stage priors only when it clears them all.
        if (fused_gain is not None and "fused" in self.candidates
                and fused_gain > max(gain, prepad_gain or 1.0, 1.0)):
            choice = "fused"
        fresh = ConfigState(
            key=key,
            model_gain=gain,
            model_choice=choice,
            stats={c: VariantStats() for c in self.candidates},
            model_prepad_gain=prepad_gain,
            model_fused_gain=fused_gain,
        )
        with self._lock:
            state = self._states.setdefault(key, fresh)
            self._g_configs.set(len(self._states))
        return state

    # ----------------------------------------------------------- observations

    def observe(self, key: TunerKey, variant: str, seconds: float) -> None:
        """Fold one measured vectorized execution into the table."""
        with self._lock:
            state = self._states.get(key)
            if state is None or variant not in state.stats:
                return
            st = state.stats[variant]
            st.pending = max(0, st.pending - 1)
            st.observe(seconds, self.ema_alpha)

            eligible = state.eligible(self.candidates, self.max_failures)
            if state.committed is None:
                if all(state.stats[c].observations >= self.trials_per_variant
                       for c in eligible):
                    self._commit(state, eligible)
            elif variant != state.committed:
                incumbent = state.stats[state.committed].best_seconds
                challenger = st.best_seconds
                if (incumbent is not None and challenger is not None
                        and challenger < incumbent * (1.0 - self.hysteresis)):
                    state.committed = variant
                    state.switches += 1
                    self._c_switches.inc()
                    self._update_agreement_gauge()

    def penalize(
        self, key: TunerKey, variant: str, *, factor: float = 4.0
    ) -> None:
        """Record a degradation (compile fallback / execution failure).

        The variant's score is inflated so the winner selection shies away
        from it, and after ``max_failures`` it is excluded from trials. A
        committed variant that keeps failing is demoted back to the trial
        phase (with itself excluded), so the config re-converges on a
        buildable shape.
        """
        with self._lock:
            state = self._states.get(key)
            if state is None or variant not in state.stats:
                return
            st = state.stats[variant]
            st.pending = max(0, st.pending - 1)
            st.failures += 1
            if st.best_seconds is not None:
                st.best_seconds *= factor
            if st.ema_seconds is not None:
                st.ema_seconds *= factor
            self._c_penalties.inc()
            if (state.committed == variant
                    and st.failures >= self.max_failures):
                state.committed = None
                self._update_agreement_gauge()

    def _commit(self, state: ConfigState, eligible: list[str]) -> None:
        winner = state.best_measured(eligible)
        if winner is None:
            return
        state.committed = winner
        state.since_probe = 0
        self._c_commits.inc()
        if state.agrees_with_model:
            self._c_agreements.inc()
        self._update_agreement_gauge()

    def _update_agreement_gauge(self) -> None:
        committed = [s for s in self._states.values() if s.committed is not None]
        if committed:
            rate = sum(1 for s in committed if s.agrees_with_model) / len(committed)
            self._g_agreement.set(rate)
        self._g_configs.set(len(self._states))

    # -------------------------------------------------------------- reporting

    def explain(self, key: TunerKey) -> dict:
        """Why the tuner is deciding the way it is for ``key`` — flat,
        span-attribute-friendly facts (used by the trace layer to annotate
        ``autotune`` spans)."""
        with self._lock:
            state = self._states.get(key)
            if state is None:
                return {}
            return {
                "model_gain": state.model_gain,
                "model_prepad_gain": state.model_prepad_gain,
                "model_fused_gain": state.model_fused_gain,
                "model_choice": state.model_choice,
                "committed": state.committed,
                "switches": state.switches,
                "observations": {
                    c: st.observations for c, st in state.stats.items()
                },
            }

    def agreement_rate(self) -> Optional[float]:
        """Fraction of committed configs agreeing with the model (live
        Table III); ``None`` before any commit."""
        with self._lock:
            committed = [s for s in self._states.values()
                         if s.committed is not None]
            if not committed:
                return None
            return (sum(1 for s in committed if s.agrees_with_model)
                    / len(committed))

    def table(self) -> list[dict]:
        """One row per configuration, for the ``tune`` CLI and tests."""
        with self._lock:
            rows = []
            for key in sorted(self._states, key=lambda k: k.short()):
                state = self._states[key]
                rows.append({
                    "key": key,
                    "model_gain": state.model_gain,
                    "model_choice": state.model_choice,
                    "committed": state.committed,
                    "agrees": state.agrees_with_model,
                    "switches": state.switches,
                    "stats": {
                        c: dataclasses.replace(st)
                        for c, st in state.stats.items()
                    },
                })
            return rows

    def stats(self) -> dict:
        with self._lock:
            committed = sum(
                1 for s in self._states.values() if s.committed is not None
            )
            return {
                "configs": len(self._states),
                "committed": committed,
            }

    # ------------------------------------------------------------ persistence

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Write the learned table as JSON (see docs/autotuner.md)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the tuner has no default path")
        with self._lock:
            payload = {
                "version": 1,
                "candidates": list(self.candidates),
                "configs": [
                    {
                        **dataclasses.asdict(state.key),
                        "model_gain": state.model_gain,
                        "model_prepad_gain": state.model_prepad_gain,
                        "model_fused_gain": state.model_fused_gain,
                        "model_choice": state.model_choice,
                        "committed": state.committed,
                        "switches": state.switches,
                        "stats": {
                            c: st.to_json() for c, st in state.stats.items()
                        },
                    }
                    for state in self._states.values()
                ],
            }
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(target)
        return target

    def load(self, path: Optional[Union[str, Path]] = None) -> int:
        """Merge a previously saved table; returns configs restored.

        Entries with a committed variant serve immediately on warm restart —
        no re-trialing. Unknown candidates in the file are dropped; missing
        ones start fresh.
        """
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and the tuner has no default path")
        text = source.read_text()
        if _faults._current is not None:
            # Fault point: the persisted table was corrupted on disk.
            if _faults.fire("serve.autotune.load", key=str(source)) is not None:
                text = text[: len(text) // 2] + "\x00<injected-corruption>"
        payload = json.loads(text)
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported autotune cache version {payload.get('version')!r}"
            )
        restored = 0
        with self._lock:
            for entry in payload.get("configs", []):
                key = TunerKey(
                    digest=entry["digest"],
                    width=int(entry["width"]),
                    height=int(entry["height"]),
                    pattern=entry["pattern"],
                    device=entry["device"],
                )
                stats = {c: VariantStats() for c in self.candidates}
                for c, data in entry.get("stats", {}).items():
                    if c in stats:
                        stats[c] = VariantStats.from_json(data)
                committed = entry.get("committed")
                if committed not in self.candidates:
                    committed = None
                prepad_gain = entry.get("model_prepad_gain")
                fused_gain = entry.get("model_fused_gain")
                self._states[key] = ConfigState(
                    key=key,
                    model_gain=float(entry["model_gain"]),
                    model_choice=entry["model_choice"],
                    stats=stats,
                    committed=committed,
                    switches=int(entry.get("switches", 0)),
                    model_prepad_gain=(
                        None if prepad_gain is None else float(prepad_gain)
                    ),
                    model_fused_gain=(
                        None if fused_gain is None else float(fused_gain)
                    ),
                )
                restored += 1
            self._update_agreement_gauge()
        return restored
