"""Runtime shadow-OOB verification for both execution paths.

The static pass (:mod:`repro.sanitize.static`) *proves* addresses in-bounds;
this module *instruments* actual executions so that any bound the prover
missed still traps instead of silently corrupting pixels:

* **SIMT path** — :func:`check_pipeline_simt` runs the full functional
  simulation with :class:`repro.gpu.memory.GlobalMemory` in shadow mode:
  every allocation is tracked, a redzone follows each buffer, and every lane
  address of every ``ld.global``/``st.global`` must land inside a live
  allocation.  An out-of-bounds border access traps even when it would have
  landed inside a *different* image's buffer — the failure mode that is
  invisible to a whole-memory range check.
* **Vectorized path** — :func:`check_pipeline_vectorized` evaluates the
  kernels against *canary-padded* images: each buffer is embedded in a NaN
  ring wide enough to absorb any plausible coordinate error, so a mis-mapped
  coordinate reads NaN and poisons the output, which is then scanned.  The
  region evaluator's own in-bounds assertions fire first for fancy-indexed
  border taps; the canary additionally covers the check-free Body fast path,
  whose plain slices would otherwise wrap silently on a negative start.
  Inputs must be NaN-free for the scan to be meaningful (asserted).

Both entry points return a :class:`ShadowReport` instead of raising, so the
CLI and tests can aggregate violations across a corpus.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..compiler.frontend import trace_kernel
from ..compiler.isp import Variant
from ..dsl.pipeline import Pipeline
from ..gpu.memory import MemoryError_
from ..runtime.vectorized import run_kernel_vectorized


@dataclasses.dataclass
class ShadowReport:
    """Outcome of one shadow-instrumented pipeline execution."""

    pipeline: str
    mode: str  # "simt" / "vectorized"
    variant: str
    violations: list[str] = dataclasses.field(default_factory=list)
    images: Optional[dict[str, np.ndarray]] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def check_pipeline_simt(
    pipeline: Pipeline,
    *,
    variant: Variant = Variant.ISP,
    block: tuple[int, int] = (32, 4),
    inputs: Optional[dict[str, np.ndarray]] = None,
) -> ShadowReport:
    """Run the SIMT simulation under shadow memory; collect violations."""
    from ..runtime.executor import run_pipeline_simt

    report = ShadowReport(pipeline=pipeline.name, mode="simt", variant=variant.value)
    try:
        result = run_pipeline_simt(
            pipeline, variant=variant, block=block, inputs=inputs, shadow_oob=True
        )
        report.images = result.images
    except MemoryError_ as exc:
        report.violations.append(str(exc))
    return report


class _CanaryArray:
    """An image embedded in a NaN ring, indexable with original coordinates.

    ``shape`` reports the unpadded extent; indexing (both the Body fast
    path's slice pair and the border path's ``np.ix_`` pair) is translated by
    the pad, so coordinates in ``[-pad, size + pad)`` resolve into the padded
    backing array — in-bounds coordinates read real pixels, everything else
    reads NaN.
    """

    def __init__(self, array: np.ndarray, pad: int):
        array = np.asarray(array, dtype=np.float32)
        self.pad = pad
        self.shape = array.shape
        self._backing = np.pad(
            array, pad, mode="constant", constant_values=np.float32(np.nan)
        )

    def _translate(self, key):
        if isinstance(key, slice):
            # Evaluator slices always carry concrete start/stop.
            return slice(key.start + self.pad, key.stop + self.pad, key.step)
        return np.asarray(key) + self.pad

    def __getitem__(self, key):
        assert isinstance(key, tuple), key
        if len(key) == 3 and key[0] is Ellipsis:
            # batch-aware evaluators index (..., rows, cols); a canary is
            # always 2-D, so the leading ellipsis selects nothing
            key = key[1:]
        assert len(key) == 2, key
        return self._backing[self._translate(key[0]), self._translate(key[1])]


def check_pipeline_vectorized(
    pipeline: Pipeline,
    *,
    variant: str = "isp",
    inputs: Optional[dict[str, np.ndarray]] = None,
    pad: Optional[int] = None,
) -> ShadowReport:
    """Evaluate the pipeline on canary-padded images; scan outputs for NaN."""
    report = ShadowReport(pipeline=pipeline.name, mode="vectorized", variant=variant)
    descs = [trace_kernel(k) for k in pipeline]
    if pad is None:
        # Wide enough for any coordinate a correct *or* single-reflection
        # mapping can produce: one extent past either edge, doubled.
        pad = 2 * max(max(d.extent) for d in descs) + max(
            max(d.width, d.height) for d in descs
        )

    images: dict[str, _CanaryArray] = {}
    for img in pipeline.inputs:
        host = inputs[img.name] if inputs and img.name in inputs else img.host
        host = np.asarray(host, dtype=np.float32)
        assert not np.isnan(host).any(), (
            f"canary check requires NaN-free input {img.name!r}"
        )
        images[img.name] = _CanaryArray(host, pad)

    plain: dict[str, np.ndarray] = {}
    for desc in descs:
        try:
            out = run_kernel_vectorized(desc, images, variant=variant)
        except AssertionError as exc:
            report.violations.append(f"{desc.name}: {exc}")
            return report
        bad = np.isnan(out)
        if bad.any():
            y, x = np.argwhere(bad)[0]
            report.violations.append(
                f"{desc.name}: canary NaN reached output pixel ({int(x)}, {int(y)}) "
                f"({int(bad.sum())} poisoned) — an access escaped the image"
            )
            return report
        images[desc.output_name] = _CanaryArray(out, pad)
        plain[desc.output_name] = out
    report.images = plain
    return report
