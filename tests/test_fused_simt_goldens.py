"""Golden-file snapshots of the fused SIMT megakernel IR.

Same mechanics as :mod:`tests.test_codegen_goldens` (gzip storage with a
content digest in the filename, ``--update-goldens`` to regenerate), but
for the per-block shared-memory megakernel: one snapshot per registered
multi-stage app x border pattern under ``tests/goldens/fused_simt/``
(``goldens/fused/`` belongs to the host-side overlapped-tile suite).

A second golden mirrors the ``isp_warp`` warp32-vs-wave64 diff: the fused
layout pads shared rows to a bank-conflict-free stride **per warp width**
(a 32-element row collides on 32 banks but not on 64), so compiling the
same plan for GTX680 and VEGA64 must differ in exactly the staging address
arithmetic. The unified diff of the two printed kernels is pinned as
``tests/goldens/fused-simt-warp32-vs-wave64.diff``.
"""

from __future__ import annotations

import difflib
import gzip
import hashlib
import pathlib

import pytest

from repro.compiler import compile_fused_simt, fuse_descs
from repro.gpu import GTX680, VEGA64
from repro.ir.printer import print_function
from repro.serve.plan import trace_app

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens" / "fused_simt"
WARP_DIFF_GOLDEN = (pathlib.Path(__file__).parent / "goldens"
                    / "fused-simt-warp32-vs-wave64.diff")

#: multi-stage apps only — single-stage plans have nothing to fuse
APPS = ("sobel", "night")
PATTERNS = ("clamp", "mirror", "repeat", "constant")
SIZE = 64
BLOCK = (32, 4)

COMBOS = [(a, p) for a in APPS for p in PATTERNS]

MAX_DIFF_LINES = 120
DIGEST_LEN = 12


def content_digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:DIGEST_LEN]


def find_golden(app: str, pattern: str) -> list[pathlib.Path]:
    return sorted(GOLDEN_DIR.glob(f"{app}-fused-{pattern}.*.ir.gz"))


def write_golden(app: str, pattern: str, text: str) -> pathlib.Path:
    path = GOLDEN_DIR / f"{app}-fused-{pattern}.{content_digest(text)}.ir.gz"
    for stale in find_golden(app, pattern):
        if stale != path:
            stale.unlink()
    path.write_bytes(gzip.compress(text.encode(), mtime=0))
    return path


def _compile(app: str, pattern: str, device=GTX680):
    descs = trace_app(app, pattern, SIZE, SIZE)
    plan = fuse_descs(descs, name=app)
    return compile_fused_simt(plan, block=BLOCK, device=device)


def render(app: str, pattern: str) -> str:
    cfk = _compile(app, pattern)
    header = [
        "# golden fused-SIMT IR snapshot — regenerate with:",
        "#   pytest tests/test_fused_simt_goldens.py --update-goldens",
        f"# app={app} variant=fused pattern={pattern} "
        f"size={SIZE}x{SIZE} block={BLOCK[0]}x{BLOCK[1]} "
        f"shared_bytes={cfk.func.metadata['shared_bytes']}",
    ]
    return "\n".join(header) + "\n" + print_function(cfk.func) + "\n"


@pytest.mark.parametrize("app,pattern", COMBOS,
                         ids=[f"{a}-{p}" for a, p in COMBOS])
def test_fused_ir_matches_golden(app, pattern, update_goldens):
    actual = render(app, pattern)

    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        write_golden(app, pattern, actual)
        return

    stored = find_golden(app, pattern)
    if not stored:
        pytest.fail(
            f"missing golden goldens/fused_simt/{app}-fused-{pattern}.*.ir.gz; "
            f"generate it with `pytest tests/test_fused_simt_goldens.py "
            f"--update-goldens` and commit the result"
        )
    expected = gzip.decompress(stored[-1].read_bytes()).decode()
    if actual == expected:
        return
    diff = list(difflib.unified_diff(
        expected.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=f"goldens/fused_simt/{stored[-1].name}", tofile="generated",
    ))
    shown = "".join(diff[:MAX_DIFF_LINES])
    omitted = len(diff) - MAX_DIFF_LINES
    tail = f"\n... ({omitted} more diff lines)" if omitted > 0 else ""
    pytest.fail(
        f"fused SIMT IR for {app}/{pattern} diverges from its golden "
        f"({len(diff)} diff lines). If the change is intentional, rerun "
        f"with --update-goldens and commit.\n{shown}{tail}"
    )


def test_golden_integrity():
    checked = 0
    for path in sorted(GOLDEN_DIR.glob("*.ir.gz")):
        digest = path.name.split(".")[1]
        text = gzip.decompress(path.read_bytes()).decode()
        assert content_digest(text) == digest, (
            f"{path.name}: content does not match its filename digest"
        )
        checked += 1
    assert checked == len(COMBOS)


def test_no_orphan_fused_goldens():
    valid = {f"{a}-fused-{p}" for a, p in COMBOS}
    for p in GOLDEN_DIR.iterdir():
        assert p.suffixes[-2:] == [".ir", ".gz"], f"unexpected file: {p.name}"
        assert p.name.split(".")[0] in valid, f"orphan golden: {p.name}"


# ---------------------------------------------------------------------------
# The bank-padded staging stride provably follows device.warp_size.
# ---------------------------------------------------------------------------


def _warp_ir_diff() -> str:
    texts = {}
    for dev in (GTX680, VEGA64):
        cfk = _compile("sobel", "mirror", device=dev)
        assert cfk.func.metadata["warp_size"] == dev.warp_size
        texts[dev.name] = print_function(cfk.func)
    # The 32-wide tile rows of the dx/dy buffers collide on 32 banks, so
    # warp32 pads their stride to 33 while wave64 keeps 32.
    layouts = {
        dev.name: _compile("sobel", "mirror", device=dev).layout
        for dev in (GTX680, VEGA64)
    }
    assert layouts["GTX680"].buffers["dx"].stride == BLOCK[0] + 1
    assert layouts["VEGA64"].buffers["dx"].stride == BLOCK[0]
    return "".join(difflib.unified_diff(
        texts["GTX680"].splitlines(keepends=True),
        texts["VEGA64"].splitlines(keepends=True),
        fromfile="sobel_fused@warp32", tofile="sobel_fused@wave64", n=0,
    ))


def test_fused_stride_follows_device(update_goldens):
    diff = _warp_ir_diff()
    if update_goldens:
        WARP_DIFF_GOLDEN.write_text(diff)
        pytest.skip("golden diff rewritten; review and commit")
    # The two compiles must differ (the padding exists on warp32 only) and
    # only in arithmetic feeding the shared-memory staging addresses.
    changed = [ln for ln in diff.splitlines()
               if ln[:1] in "+-" and ln[:3] not in ("+++", "---")]
    assert changed, "warp32 and wave64 fused IR are identical — no padding?"
    assert WARP_DIFF_GOLDEN.exists(), (
        "golden missing — regenerate with `pytest "
        "tests/test_fused_simt_goldens.py --update-goldens` and commit"
    )
    golden = WARP_DIFF_GOLDEN.read_text()
    if diff != golden:
        delta = "".join(difflib.unified_diff(
            golden.splitlines(keepends=True), diff.splitlines(keepends=True),
            fromfile="golden", tofile="recompiled"))
        raise AssertionError(
            f"fused warp32-vs-wave64 IR diff drifted from golden — if "
            f"intentional rerun with --update-goldens and commit:\n{delta}"
        )
