"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsl import Accessor, Boundary, BoundaryCondition, Image, IterationSpace, Kernel, Mask
from repro.ir import DataType, IRBuilder, Param


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden IR snapshots under tests/goldens/ instead "
             "of diffing against them (review the git diff afterwards!)",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20210521)  # IPPS 2021 vibes


@pytest.fixture
def small_image(rng) -> np.ndarray:
    return rng.random((48, 48)).astype(np.float32)


ALL_BOUNDARIES = [
    Boundary.CLAMP,
    Boundary.MIRROR,
    Boundary.REPEAT,
    Boundary.CONSTANT,
]


class ConvKernel(Kernel):
    """Minimal convolution kernel used by many compiler tests."""

    def __init__(self, iter_space: IterationSpace, acc: Accessor, mask: Mask,
                 kernel_name: str = "conv"):
        super().__init__(iter_space)
        self.acc = self.add_accessor(acc)
        self.mask = mask
        self._name = kernel_name

    @property
    def name(self) -> str:
        return self._name

    def kernel(self):
        return self.convolve(self.mask, self.acc)


def make_conv_kernel(
    width: int,
    height: int,
    boundary: Boundary,
    mask: np.ndarray,
    constant: float = 0.0,
    name: str = "conv",
) -> ConvKernel:
    inp = Image(width, height, "inp")
    out = Image(width, height, "out")
    acc = Accessor(BoundaryCondition(inp, boundary, constant))
    return ConvKernel(IterationSpace(out), acc, Mask(mask), name)


def simple_store_kernel(name: str = "store42") -> "IRBuilder":
    """Hand-built IR function: out[x] = 42.0 for one 32-thread block."""
    b = IRBuilder(name, [Param("out_ptr", DataType.U32, is_pointer=True)])
    b.new_block("entry")
    out = b.ld_param("out_ptr")
    from repro.ir import SpecialReg

    tid = b.special(SpecialReg.TID_X)
    off = b.cvt(b.shl(tid, 2), DataType.U32)
    addr = b.add(out, off, DataType.U32)
    b.st(addr, b.imm(42.0, DataType.F32), DataType.F32)
    b.exit()
    return b
