"""Unit tests for the IR optimization passes."""

import numpy as np

from repro.compiler import (
    eliminate_dead_code,
    fold_constants,
    optimize,
    propagate_copies,
)
from repro.gpu import GlobalMemory, LaunchConfig, launch
from repro.ir import (
    CmpOp,
    DataType,
    Immediate,
    IRBuilder,
    Opcode,
    Param,
    SpecialReg,
    verify,
)


def out_param():
    return [Param("out_ptr", DataType.U32, is_pointer=True)]


class TestConstantFolding:
    def test_integer_folding(self):
        b = IRBuilder("k", out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        r = b.add(b.imm(3, DataType.S32), b.imm(4, DataType.S32))
        r2 = b.shl(r, b.imm(1, DataType.S32))
        b.st(b.add(out, b.cvt(r2, DataType.U32), DataType.U32),
             b.imm(0, DataType.S32))
        b.exit()
        func = b.finish()
        assert fold_constants(func)
        movs = [i for i in func.instructions() if i.op is Opcode.MOV]
        assert any(isinstance(i.srcs[0], Immediate) and i.srcs[0].value == 7
                   for i in movs)

    def test_float_folding_respects_f32(self):
        b = IRBuilder("k", out_param())
        b.new_block("entry")
        b.mul(b.imm(0.1, DataType.F32), b.imm(3.0, DataType.F32))
        b.exit()
        func = b.finish()
        fold_constants(func)
        mov = next(i for i in func.instructions() if i.op is Opcode.MOV)
        assert mov.srcs[0].value == float(np.float32(np.float32(0.1) * np.float32(3.0)))

    def test_no_fold_with_register_operand(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        b.add(n, 1)
        b.exit()
        func = b.finish()
        assert not fold_constants(func)


class TestCopyPropagation:
    def test_simple_chain(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        c1 = b.mov(n)
        c2 = b.mov(c1)
        b.add(c2, 1)
        b.exit()
        func = b.finish()
        assert propagate_copies(func)
        add = next(i for i in func.instructions() if i.op is Opcode.ADD)
        assert add.srcs[0].name == n.name

    def test_loop_carried_not_propagated(self):
        """Repeat-style mutable registers (multiple defs) must survive."""
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        x = b.fresh_reg(DataType.S32, "x")
        b.mov_to(x, n)
        b.br("head")
        b.new_block("head")
        p = b.setp(CmpOp.GT, x, 0)
        b.cbr(p, "body", "done")
        b.new_block("body")
        b.mov_to(x, b.sub(x, 1))
        b.br("head")
        b.new_block("done")
        b.exit()
        func = b.finish()
        propagate_copies(func)
        setp = next(i for i in func.instructions() if i.op is Opcode.SETP)
        assert setp.srcs[0].name == x.name  # untouched


class TestDeadCodeElimination:
    def test_removes_unused_chain(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        t = b.add(n, 1)
        b.mul(t, 2)  # dead
        b.exit()
        func = b.finish()
        assert eliminate_dead_code(func)
        # Everything except exit is gone: the whole chain (including the
        # ld.param feeding it) is transitively dead.
        ops = [i.op for i in func.instructions()]
        assert ops == [Opcode.EXIT]

    def test_keeps_stores_and_branches(self):
        b = IRBuilder("k", out_param())
        b.new_block("entry")
        out = b.ld_param("out_ptr")
        b.st(out, b.imm(1.0, DataType.F32), DataType.F32)
        b.exit()
        func = b.finish()
        eliminate_dead_code(func)
        assert [i.op for i in func.instructions()] == [
            Opcode.LDPARAM, Opcode.ST, Opcode.EXIT,
        ]


class TestPipelineSemanticsPreserved:
    def test_optimize_preserves_behaviour(self, rng):
        """Run the same kernel optimized and unoptimized; outputs match."""

        def build():
            b = IRBuilder("k", out_param())
            b.new_block("entry")
            out = b.ld_param("out_ptr")
            tid = b.special(SpecialReg.TID_X)
            dead = b.mul(tid, 77)  # dead
            c = b.mov(tid)  # copy
            scaled = b.mul(c, b.add(b.imm(2, DataType.S32), b.imm(3, DataType.S32)))
            addr = b.add(out, b.cvt(b.shl(tid, 2), DataType.U32), DataType.U32)
            b.st(addr, scaled)
            b.exit()
            del dead
            return b.finish()

        results = []
        for do_opt in (False, True):
            func = build()
            if do_opt:
                before = func.static_size()
                optimize(func)
                assert func.static_size() < before
            verify(func)
            mem = GlobalMemory(1 << 12)
            out = mem.alloc(32 * 4)
            launch(func, LaunchConfig((1, 1), (32, 1)), mem, {"out_ptr": out})
            results.append(mem.read_array(out, (32,), DataType.S32))
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], np.arange(32) * 5)

    def test_optimize_compiled_filters_still_verify(self):
        from repro.compiler import Variant, compile_kernel, trace_kernel
        from repro.dsl import Boundary
        from tests.conftest import make_conv_kernel

        for variant in (Variant.NAIVE, Variant.ISP):
            ck = compile_kernel(
                trace_kernel(make_conv_kernel(
                    64, 64, Boundary.REPEAT, np.ones((3, 3), np.float32))),
                variant=variant,
            )
            verify(ck.func)  # compile_kernel already verifies; double-check
