"""Register-estimation tests (paper Table II's mechanism)."""

import numpy as np
import pytest

from repro.compiler import (
    Variant,
    compile_kernel,
    estimate_registers,
    max_live_registers,
    trace_kernel,
)
from repro.dsl import Boundary
from repro.gpu import GTX680, RTX2080
from repro.ir import CmpOp, DataType, IRBuilder, Param
from tests.conftest import make_conv_kernel


class TestMaxLive:
    def test_straight_line_chain(self):
        """a; b=a+1; c=b+1 — only one value live at a time after use."""
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        v = b.ld_param("n")
        for _ in range(10):
            v = b.add(v, 1)
        b.exit()
        assert max_live_registers(b.finish()) == 1

    def test_parallel_values(self):
        """n values all consumed at the end -> n live simultaneously."""
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        vals = [b.add(n, i) for i in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.exit()
        assert max_live_registers(b.finish()) >= 8

    def test_predicates_not_counted(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        ps = [b.setp(CmpOp.LT, n, i) for i in range(10)]
        b.cbr(ps[-1], "a", "b")
        b.new_block("a")
        b.br("b")
        b.new_block("b")
        b.exit()
        assert max_live_registers(b.finish()) <= 2

    def test_live_across_branch(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        kept = b.add(n, 5)
        p = b.setp(CmpOp.LT, n, 0)
        b.cbr(p, "a", "join")
        b.new_block("a")
        b.br("join")
        b.new_block("join")
        b.add(kept, 1)  # kept live across the diamond
        b.exit()
        assert max_live_registers(b.finish()) >= 1


class TestEstimates:
    @pytest.mark.parametrize("boundary", [Boundary.CLAMP, Boundary.REPEAT])
    def test_isp_uses_more_registers_than_naive(self, boundary):
        """The paper's Table II property, for every pattern."""
        desc = trace_kernel(make_conv_kernel(
            512, 512, boundary, np.ones((5, 5), np.float32)))
        naive = compile_kernel(desc, variant=Variant.NAIVE, device=GTX680)
        isp = compile_kernel(desc, variant=Variant.ISP, device=GTX680)
        assert isp.registers.estimated > naive.registers.estimated

    def test_table2_structure_bilateral_gtx680(self):
        """Bilateral 13x13 on GTX680, 32x4 blocks: naive 62.5% -> ISP 50%."""
        from repro.filters import bilateral
        from repro.gpu import compute_occupancy

        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        n = compile_kernel(desc, variant=Variant.NAIVE, device=GTX680)
        i = compile_kernel(desc, variant=Variant.ISP, device=GTX680)
        occ_n = compute_occupancy(GTX680, 128, n.registers.allocated)
        occ_i = compute_occupancy(GTX680, 128, i.registers.allocated)
        assert occ_n.percent == pytest.approx(62.5)
        assert occ_i.percent == pytest.approx(50.0)

    def test_turing_no_occupancy_drop(self):
        """Same kernels on RTX2080: register growth is absorbed
        (paper Section VI-A.2)."""
        from repro.filters import bilateral
        from repro.gpu import compute_occupancy

        pipe = bilateral.build_pipeline(512, 512, Boundary.CLAMP)
        desc = trace_kernel(pipe.kernels[0])
        n = compile_kernel(desc, variant=Variant.NAIVE, device=RTX2080)
        i = compile_kernel(desc, variant=Variant.ISP, device=RTX2080)
        occ_n = compute_occupancy(RTX2080, 128, n.registers.allocated)
        occ_i = compute_occupancy(RTX2080, 128, i.registers.allocated)
        assert occ_n.occupancy == occ_i.occupancy == 1.0

    def test_cap_and_spills(self):
        b = IRBuilder("fat", [Param("n", DataType.S32)])
        b.new_block("entry")
        n = b.ld_param("n")
        vals = [b.add(n, i) for i in range(100)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.exit()
        est = estimate_registers(b.finish(), GTX680)
        assert est.allocated <= GTX680.max_registers_per_thread
        assert est.spilled > 0
        assert est.spill_factor > 1.0
        est_turing = estimate_registers(b.finish(), RTX2080)
        assert est_turing.spilled == 0

    def test_no_device_defaults_to_generous_cap(self):
        b = IRBuilder("k", [Param("n", DataType.S32)])
        b.new_block("entry")
        b.ld_param("n")
        b.exit()
        est = estimate_registers(b.finish(), None)
        assert est.spilled == 0
