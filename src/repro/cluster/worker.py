"""Shard worker: one process, one full :class:`ServeEngine`, one TCP port.

A shard is the serve stack, whole — plan cache, autotuner, circuit breaker,
fault injection, tracing — wrapped in a socket server speaking the frame
protocol of :mod:`repro.cluster.protocol`. Nothing is re-implemented at this
layer; the cluster's value is placement (the router keeps each plan's
keyspace on one shard so that shard's caches stay hot), and the worker's job
is to be an honest network face for the engine underneath.

Operations (header ``op`` field):

``hello``     protocol/identity handshake (version, slot, pid)
``ping``      liveness probe
``put_image`` register an image payload under a caller-chosen ``ref`` —
              the load generator registers its image pool once instead of
              shipping megabytes per request
``run``       execute one request; the image arrives inline or by ``ref``;
              ``return="digest"`` sends back a SHA-256 of the output bytes
              instead of the pixels (bit-exactness checks at 10k requests
              should not cost 10 GB of loopback traffic)
``run_batch`` execute N same-workload requests shipped as one inline
              ``(N, H, W)`` stack; the engine collapses them into a single
              kernel-level batched evaluation and the reply carries the
              stacked outputs (or per-image digests) plus per-request
              outcome rows
``stats``     engine stats + a metrics snapshot (with histogram samples, so
              the gateway can merge percentiles from pooled observations)
``snapshot``  persist the autotuner table now (the warm-start tier calls
              this periodically; a replacement shard loads the file at boot)
``shutdown``  drain and exit cleanly

Tracing across the process boundary: the gateway decides head-sampling — a
shard must not roll its own dice, or a sampled gateway request could pair
with an unsampled shard execution. The worker installs a
:class:`SelectiveTracer` (samples nothing by default); when a ``run`` frame
carries ``"trace": true`` the request's key is allow-listed, the engine
records its usual span subtree, and the worker pops exactly that trace and
ships it back serialized (unix-anchored) for the gateway to graft.

Fault points: ``cluster.worker.exit`` fires in the request handler and takes
the whole process down with ``os._exit`` — no atexit, no flush, the honest
shape of a SIGKILL'd shard — which is how the chaos suite makes a shard die
mid-flight deterministically.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading
from typing import Optional

import numpy as np

from ..faults import core as _faults
from ..serve.engine import Request, ServeEngine
from ..trace import core as _trace_core
from ..trace.core import Tracer
from . import protocol
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    array_digest,
    decode_array,
    encode_array,
    recv_frame,
    send_frame,
    spans_to_wire,
)


class SelectiveTracer(Tracer):
    """A tracer that samples nothing except explicitly allow-listed keys.

    The cross-process sampling contract: the *gateway* makes the head
    decision once per request; the shard obeys. ``allow`` arms one key,
    :meth:`start_trace` consumes it, and :meth:`pop_trace` extracts a
    finished trace's spans (removing them, so the buffer never accumulates
    spans nobody will collect).
    """

    def __init__(self, *, max_spans: int = 100_000):
        super().__init__(sample_rate=0.0, max_spans=max_spans)
        self._allowed: set[str] = set()
        self._allow_lock = threading.Lock()

    def allow(self, key: str) -> None:
        with self._allow_lock:
            self._allowed.add(key)

    def sampled(self, key: str) -> bool:
        with self._allow_lock:
            if key in self._allowed:
                self._allowed.discard(key)  # one trace per allowance
                return True
        return False

    def pop_trace(self, trace_id: str) -> list:
        """Remove and return the spans of one finished trace."""
        with self._lock:
            mine = [s for s in self._spans if s.trace_id == trace_id]
            self._spans = [s for s in self._spans if s.trace_id != trace_id]
        return mine


class ShardServer:
    """The worker's accept loop + per-connection request handling."""

    def __init__(
        self,
        *,
        slot: str,
        host: str = "127.0.0.1",
        port: int = 0,
        engine_kwargs: Optional[dict] = None,
    ):
        self.slot = slot
        kwargs = dict(engine_kwargs or {})
        self.engine = ServeEngine(**kwargs)
        self.tracer = SelectiveTracer()
        _trace_core.install(self.tracer)
        #: autotune configs present at boot — a warm-started replacement
        #: shard reports > 0 here, a cold one 0 (the chaos suite asserts it)
        self.boot_configs = (
            self.engine.tuner.stats()["configs"]
            if self.engine.tuner is not None else 0
        )
        self._images: dict[str, np.ndarray] = {}
        self._images_lock = threading.Lock()
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"shard-{slot}-accept", daemon=True
        )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._accept_thread.start()

    def serve_forever(self) -> None:
        self.start()
        self._shutdown.wait()
        self.close()

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.engine.close()
        if _trace_core.active() is self.tracer:
            _trace_core.uninstall()

    # ----------------------------------------------------------- accept loop

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"shard-{self.slot}-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while not self._shutdown.is_set():
                try:
                    header, payload = recv_frame(conn)
                except (ConnectionError, OSError):
                    return
                try:
                    reply, out_payload = self.handle(header, payload)
                except ProtocolError as exc:
                    reply, out_payload = (
                        {"ok": False, "error": str(exc),
                         "error_kind": "bad_request"},
                        b"",
                    )
                try:
                    send_frame(conn, reply, out_payload)
                except (ConnectionError, OSError):
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # --------------------------------------------------------------- handlers

    def handle(self, header: dict, payload: bytes) -> tuple[dict, bytes]:
        """Dispatch one frame; returns (reply header, reply payload)."""
        op = header.get("op")
        if op == "run":
            return self._op_run(header, payload)
        if op == "run_batch":
            return self._op_run_batch(header, payload)
        if op == "put_image":
            return self._op_put_image(header, payload)
        if op == "stats":
            return self._op_stats(header)
        if op == "snapshot":
            return self._op_snapshot()
        if op in ("ping", "hello"):
            return ({
                "ok": True, "op": op, "slot": self.slot, "pid": os.getpid(),
                "version": PROTOCOL_VERSION,
                "boot_configs": self.boot_configs,
            }, b"")
        if op == "shutdown":
            self._shutdown.set()
            return ({"ok": True, "op": "shutdown"}, b"")
        raise ProtocolError(f"unknown op {op!r}")

    def _op_put_image(self, header: dict, payload: bytes) -> tuple[dict, bytes]:
        ref = header.get("ref")
        if not isinstance(ref, str) or not ref:
            raise ProtocolError("put_image needs a non-empty string 'ref'")
        image = decode_array(header.get("array", {}), payload)
        with self._images_lock:
            self._images[ref] = image
        return ({"ok": True, "ref": ref}, b"")

    def _op_run(self, header: dict, payload: bytes) -> tuple[dict, bytes]:
        if _faults._current is not None:
            # Fault point: the shard process dies mid-request. os._exit skips
            # every cleanup hook on purpose — a crashed shard does not flush
            # its tuner or close its sockets, and the failover path must cope
            # with exactly that.
            act = _faults.fire("cluster.worker.exit",
                               key=str(header.get("key", "")), slot=self.slot)
            if act is not None:
                os._exit(17)

        if header.get("ref") is not None:
            with self._images_lock:
                image = self._images.get(header["ref"])
            if image is None:
                raise ProtocolError(f"unknown image ref {header['ref']!r}")
        elif payload:
            image = decode_array(header.get("array", {}), payload)
        else:
            raise ProtocolError("run needs an image (inline payload or 'ref')")

        try:
            request = Request(
                app=header["app"],
                image=image,
                pattern=header.get("pattern", "clamp"),
                variant=header.get("variant", "isp+m"),
                exec_mode=header.get("exec_mode", "vectorized"),
                constant=float(header.get("constant", 0.0)),
                timeout_s=header.get("timeout_s"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ProtocolError(f"bad run request: {exc}") from exc

        if header.get("trace"):
            # The gateway sampled this request; arm its key so the engine's
            # start_trace succeeds for exactly this one.
            self.tracer.allow(f"r{request.request_id}")

        response = self.engine.run([request])[0]

        reply: dict = {
            "ok": response.ok,
            "request_id": response.request_id,
            "variant": response.variant,
            "cache_hit": response.cache_hit,
            "fallbacks": list(response.fallbacks),
            "retries": response.retries,
            "queue_seconds": response.queue_seconds,
            "execute_seconds": response.execute_seconds,
            "slot": self.slot,
        }
        if not response.ok:
            reply["error"] = response.error
            reply["error_kind"] = response.error_kind

        if response.trace_id is not None:
            spans = self.tracer.pop_trace(response.trace_id)
            reply["spans"] = spans_to_wire(spans, self.tracer.epoch_unix)

        out_payload = b""
        if response.output is not None:
            if header.get("return") == "digest":
                reply["digest"] = array_digest(response.output)
            else:
                meta, out_payload = encode_array(response.output)
                reply["array"] = meta
        return reply, out_payload

    def _op_run_batch(self, header: dict, payload: bytes) -> tuple[dict, bytes]:
        """N same-workload requests in one frame — batch shapes over the wire.

        The payload is an ``(N, H, W)`` stack (the array codec is
        shape-generic); the requests share one signature, so the engine's
        micro-batcher hands all N to one worker and the kernel-level batch
        path serves them in a single ``(N, H, W)`` evaluation.
        """
        if not payload:
            raise ProtocolError("run_batch needs an inline (N, H, W) payload")
        stack = decode_array(header.get("array", {}), payload)
        if stack.ndim != 3 or stack.shape[0] < 1:
            raise ProtocolError(
                f"run_batch payload must be (N, H, W), got shape {stack.shape}"
            )
        try:
            requests = [
                Request(
                    app=header["app"],
                    image=stack[i],
                    pattern=header.get("pattern", "clamp"),
                    variant=header.get("variant", "isp+m"),
                    exec_mode=header.get("exec_mode", "vectorized"),
                    constant=float(header.get("constant", 0.0)),
                    timeout_s=header.get("timeout_s"),
                )
                for i in range(stack.shape[0])
            ]
        except (KeyError, ValueError, TypeError) as exc:
            raise ProtocolError(f"bad run_batch request: {exc}") from exc

        responses = self.engine.run(requests)

        results = []
        for resp in responses:
            row: dict = {
                "ok": resp.ok,
                "request_id": resp.request_id,
                "variant": resp.variant,
                "cache_hit": resp.cache_hit,
                "retries": resp.retries,
                "execute_seconds": resp.execute_seconds,
            }
            if not resp.ok:
                row["error"] = resp.error
                row["error_kind"] = resp.error_kind
            results.append(row)
        reply: dict = {
            "ok": all(r.ok for r in responses),
            "count": len(responses),
            "results": results,
            "slot": self.slot,
        }
        out_payload = b""
        if all(r.output is not None for r in responses):
            if header.get("return") == "digest":
                reply["digests"] = [array_digest(r.output) for r in responses]
            else:
                meta, out_payload = encode_array(
                    np.stack([r.output for r in responses])
                )
                reply["array"] = meta
        return reply, out_payload

    def _op_stats(self, header: dict) -> tuple[dict, bytes]:
        include_samples = bool(header.get("samples", True))
        return ({
            "ok": True,
            "slot": self.slot,
            "pid": os.getpid(),
            "boot_configs": self.boot_configs,
            "stats": self.engine.stats(),
            "metrics": self.engine.metrics.snapshot(
                include_samples=include_samples
            ),
        }, b"")

    def _op_snapshot(self) -> tuple[dict, bytes]:
        tuner = self.engine.tuner
        if tuner is None or tuner.path is None:
            return ({"ok": True, "saved": False}, b"")
        try:
            tuner.save()
        except OSError as exc:
            return ({"ok": False, "saved": False, "error": str(exc),
                     "error_kind": "bad_request"}, b"")
        return ({"ok": True, "saved": True, "path": str(tuner.path),
                 "configs": tuner.stats()["configs"]}, b"")


# ---------------------------------------------------------------------------
# Process entry point (``python -m repro.cluster.worker``)
# ---------------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="one cluster shard: a ServeEngine behind a TCP port",
    )
    parser.add_argument("--slot", required=True,
                        help="stable shard slot name (routing identity)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 = pick a free port (reported on stdout)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--plan-cache-size", type=int, default=64)
    parser.add_argument("--autotune-path", default=None,
                        help="tuner persistence file (enables the tuner; "
                        "pre-seeded by the warm-start tier)")
    parser.add_argument("--default-timeout-s", type=float, default=None)
    parser.add_argument("--faults", default=None,
                        help="JSON FaultPlan (inline or @file) to arm "
                        "process-wide — the chaos suite's determinism ships "
                        "to shards this way")
    args = parser.parse_args(argv)

    engine_kwargs = dict(
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        plan_cache_size=args.plan_cache_size,
        default_timeout_s=args.default_timeout_s,
    )
    if args.autotune_path is not None:
        engine_kwargs["autotune_path"] = args.autotune_path

    fault_cm = None
    if args.faults:
        raw = args.faults
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as fh:
                raw = fh.read()
        plan = _faults.FaultPlan.from_json(json.loads(raw))
        fault_cm = _faults.armed(plan)
        fault_cm.__enter__()

    server = ShardServer(slot=args.slot, host=args.host, port=args.port,
                         engine_kwargs=engine_kwargs)
    # The READY line is the spawn handshake: the manager reads it to learn
    # the bound port before routing anything at this shard.
    print(json.dumps({
        "ready": True, "slot": args.slot, "host": server.host,
        "port": server.port, "pid": os.getpid(),
        "boot_configs": server.boot_configs,
    }), flush=True)
    try:
        server.serve_forever()
    finally:
        if fault_cm is not None:
            fault_cm.__exit__(None, None, None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
